package sccp

import (
	"fmt"
	"strings"
)

// The nmsccp surface syntax (cmd/nmsccp) mirrors Fig. 2 of the paper:
//
//	semiring weighted.
//	var x in 0..10.
//	var spv in 0..1.
//
//	provider() :: tell(x + 5) -> ask(spv == 1)->[10,2] success.
//
//	main :: provider() || tell(2*x) -> tell(spv == 1) -> success.
//
// Statements end with '.'. An action's checked transition is written
// '->[a1,a2]' with a1 the lower and a2 the upper threshold; either
// may be '_' (absent) or 'inf'. A bare '->' is the unrestricted
// transition. Constraint expressions are arithmetic over declared
// variables (compiled to soft constraints valued by the expression)
// or comparisons (crisp One/Zero constraints). 'exists v in lo..hi
// (A)' hides a local variable; 'p(x,y)' calls a declared clause; '+'
// between ask/nask-guarded agents is nondeterministic choice; '||' is
// parallel composition.

// Program is a parsed nmsccp program, ready to Compile.
type Program struct {
	// SemiringName is one of "weighted", "fuzzy", "probabilistic".
	SemiringName string
	// Vars are the declared problem variables with integer ranges.
	Vars []VarDecl
	// Clauses are the procedure declarations.
	Clauses []ClauseDecl
	// Main is the initial agent.
	Main AstAgent
}

// VarDecl declares a variable with domain {Lo..Hi}.
type VarDecl struct {
	Name   string
	Lo, Hi int
}

// ClauseDecl is a procedure declaration p(params) :: body.
type ClauseDecl struct {
	Name   string
	Params []string
	Body   AstAgent
}

// AstAgent is a parsed (uncompiled) agent.
type AstAgent interface{ astAgent() }

type aSuccess struct{}

type aAction struct {
	// Kind is "tell", "ask", "nask", "retract" or "update".
	Kind string
	// UpdateVars holds the braced variable list for update.
	UpdateVars []string
	Expr       Expr
	Lower      string // a1 text; "" if absent
	Upper      string // a2 text; "" if absent
	Next       AstAgent
}

type aPar struct{ Left, Right AstAgent }

type aSum struct{ Branches []AstAgent }

type aExists struct {
	Var    string
	Lo, Hi int
	Body   AstAgent
}

type aCall struct {
	Name string
	Args []string
}

type aTimeout struct {
	Budget     int
	Body, Else AstAgent
}

func (aSuccess) astAgent() {}
func (aAction) astAgent()  {}
func (aPar) astAgent()     {}
func (aSum) astAgent()     {}
func (aExists) astAgent()  {}
func (aCall) astAgent()    {}
func (aTimeout) astAgent() {}

// Expr is a parsed constraint expression.
type Expr interface{ expr() }

type eNum struct{ V float64 }
type eVar struct{ Name string }
type eBin struct {
	Op   string // + - * /
	L, R Expr
}
type eCmp struct {
	Op   string // <= < >= > == !=
	L, R Expr
}

func (eNum) expr() {}
func (eVar) expr() {}
func (eBin) expr() {}
func (eCmp) expr() {}

type parser struct {
	toks []token
	pos  int
	err  error
}

// Parse parses an nmsccp program text.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{SemiringName: "weighted"}
	seenMain := false
	for p.peek().kind != tokEOF {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, p.errf("expected declaration, got %s", t.kind)
		}
		switch strings.ToLower(t.text) {
		case "semiring":
			p.next()
			name := p.expectIdent()
			if name == "" {
				return nil, p.err
			}
			switch strings.ToLower(name) {
			case "weighted", "fuzzy", "probabilistic":
				prog.SemiringName = strings.ToLower(name)
			default:
				return nil, p.errf("unknown semiring %q (want weighted, fuzzy or probabilistic)", name)
			}
			if !p.expect(tokDot) {
				return nil, p.err
			}
		case "var":
			p.next()
			name := p.expectIdent()
			if name == "" {
				return nil, p.err
			}
			if isKeyword(name) {
				return nil, p.errf("variable name %q is a keyword", name)
			}
			if !p.expectKeyword("in") {
				return nil, p.err
			}
			lo, ok := p.expectInt()
			if !ok {
				return nil, p.err
			}
			if !p.expect(tokDotDot) {
				return nil, p.err
			}
			hi, ok := p.expectInt()
			if !ok {
				return nil, p.err
			}
			if hi < lo {
				return nil, p.errf("empty domain %d..%d for %q", lo, hi, name)
			}
			if !p.expect(tokDot) {
				return nil, p.err
			}
			prog.Vars = append(prog.Vars, VarDecl{Name: name, Lo: lo, Hi: hi})
		case "main":
			p.next()
			if !p.expect(tokDefine) {
				return nil, p.err
			}
			body, err := p.parseAgent()
			if err != nil {
				return nil, err
			}
			if !p.expect(tokDot) {
				return nil, p.err
			}
			prog.Main = body
			seenMain = true
		default:
			// Clause: name(params) :: body.
			name := p.expectIdent()
			if isKeyword(name) {
				return nil, p.errf("unexpected keyword %q", name)
			}
			if !p.expect(tokLParen) {
				return nil, p.err
			}
			var params []string
			for p.peek().kind != tokRParen {
				id := p.expectIdent()
				if id == "" {
					return nil, p.err
				}
				params = append(params, id)
				if p.peek().kind == tokComma {
					p.next()
				}
			}
			p.next() // ')'
			if !p.expect(tokDefine) {
				return nil, p.err
			}
			body, err := p.parseAgent()
			if err != nil {
				return nil, err
			}
			if !p.expect(tokDot) {
				return nil, p.err
			}
			prog.Clauses = append(prog.Clauses, ClauseDecl{Name: name, Params: params, Body: body})
		}
	}
	if !seenMain {
		return nil, fmt.Errorf("nmsccp: program has no main agent")
	}
	return prog, nil
}

// parseAgent := sum { "||" sum }
func (p *parser) parseAgent() (AstAgent, error) {
	left, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokPar {
		p.next()
		right, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		left = aPar{Left: left, Right: right}
	}
	return left, nil
}

// parseSum := prefix { "+" prefix }
func (p *parser) parseSum() (AstAgent, error) {
	first, err := p.parsePrefix()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokPlus {
		return first, nil
	}
	branches := []AstAgent{first}
	for p.peek().kind == tokPlus {
		p.next()
		b, err := p.parsePrefix()
		if err != nil {
			return nil, err
		}
		branches = append(branches, b)
	}
	for _, b := range branches {
		act, ok := b.(aAction)
		if !ok || (act.Kind != "ask" && act.Kind != "nask") {
			return nil, fmt.Errorf("nmsccp: '+' branches must be ask/nask guarded")
		}
	}
	return aSum{Branches: branches}, nil
}

func (p *parser) parsePrefix() (AstAgent, error) {
	t := p.peek()
	if t.kind == tokLParen {
		p.next()
		a, err := p.parseAgent()
		if err != nil {
			return nil, err
		}
		if !p.expect(tokRParen) {
			return nil, p.err
		}
		return a, nil
	}
	if t.kind != tokIdent {
		return nil, p.errf("expected agent, got %s", t.kind)
	}
	switch strings.ToLower(t.text) {
	case "success":
		p.next()
		return aSuccess{}, nil
	case "tell", "ask", "nask", "retract":
		kind := strings.ToLower(t.text)
		p.next()
		if !p.expect(tokLParen) {
			return nil, p.err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.expect(tokRParen) {
			return nil, p.err
		}
		lo, hi, err := p.parseArrow()
		if err != nil {
			return nil, err
		}
		next, err := p.parsePrefix()
		if err != nil {
			return nil, err
		}
		return aAction{Kind: kind, Expr: e, Lower: lo, Upper: hi, Next: next}, nil
	case "update":
		p.next()
		if !p.expect(tokLBrace) {
			return nil, p.err
		}
		var vars []string
		for p.peek().kind != tokRBrace {
			id := p.expectIdent()
			if id == "" {
				return nil, p.err
			}
			vars = append(vars, id)
			if p.peek().kind == tokComma {
				p.next()
			}
		}
		p.next() // '}'
		if len(vars) == 0 {
			return nil, fmt.Errorf("nmsccp: update needs at least one variable")
		}
		if !p.expect(tokLParen) {
			return nil, p.err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.expect(tokRParen) {
			return nil, p.err
		}
		lo, hi, err := p.parseArrow()
		if err != nil {
			return nil, err
		}
		next, err := p.parsePrefix()
		if err != nil {
			return nil, err
		}
		return aAction{Kind: "update", UpdateVars: vars, Expr: e, Lower: lo, Upper: hi, Next: next}, nil
	case "timeout":
		p.next()
		budget, ok := p.expectInt()
		if !ok {
			return nil, p.err
		}
		if budget <= 0 {
			return nil, p.errf("timeout budget must be positive, got %d", budget)
		}
		if !p.expect(tokLParen) {
			return nil, p.err
		}
		body, err := p.parseAgent()
		if err != nil {
			return nil, err
		}
		if !p.expect(tokRParen) {
			return nil, p.err
		}
		if !p.expectKeyword("else") {
			return nil, p.err
		}
		if !p.expect(tokLParen) {
			return nil, p.err
		}
		alt, err := p.parseAgent()
		if err != nil {
			return nil, err
		}
		if !p.expect(tokRParen) {
			return nil, p.err
		}
		return aTimeout{Budget: budget, Body: body, Else: alt}, nil
	case "exists":
		p.next()
		name := p.expectIdent()
		if name == "" {
			return nil, p.err
		}
		if !p.expectKeyword("in") {
			return nil, p.err
		}
		lo, ok := p.expectInt()
		if !ok {
			return nil, p.err
		}
		if !p.expect(tokDotDot) {
			return nil, p.err
		}
		hi, ok := p.expectInt()
		if !ok {
			return nil, p.err
		}
		if !p.expect(tokLParen) {
			return nil, p.err
		}
		body, err := p.parseAgent()
		if err != nil {
			return nil, err
		}
		if !p.expect(tokRParen) {
			return nil, p.err
		}
		return aExists{Var: name, Lo: lo, Hi: hi, Body: body}, nil
	default:
		// Procedure call: name(args).
		name := t.text
		if isKeyword(name) {
			return nil, p.errf("unexpected keyword %q", name)
		}
		p.next()
		if !p.expect(tokLParen) {
			return nil, p.err
		}
		var args []string
		for p.peek().kind != tokRParen {
			id := p.expectIdent()
			if id == "" {
				return nil, p.err
			}
			args = append(args, id)
			if p.peek().kind == tokComma {
				p.next()
			}
		}
		p.next() // ')'
		return aCall{Name: name, Args: args}, nil
	}
}

// parseArrow parses '->' with optional '[a1,a2]' thresholds, each a
// number, 'inf', or '_'.
func (p *parser) parseArrow() (lower, upper string, err error) {
	if !p.expect(tokArrow) {
		return "", "", p.err
	}
	if p.peek().kind != tokLBracket {
		return "", "", nil
	}
	p.next()
	lower, err = p.parseBound()
	if err != nil {
		return "", "", err
	}
	if !p.expect(tokComma) {
		return "", "", p.err
	}
	upper, err = p.parseBound()
	if err != nil {
		return "", "", err
	}
	if !p.expect(tokRBracket) {
		return "", "", p.err
	}
	return lower, upper, nil
}

func (p *parser) parseBound() (string, error) {
	t := p.peek()
	switch {
	case t.kind == tokUnder:
		p.next()
		return "", nil
	case t.kind == tokNumber:
		p.next()
		return t.text, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "inf"):
		p.next()
		return "inf", nil
	default:
		return "", p.errf("expected threshold (number, inf or _), got %s", t.kind)
	}
}

// parseExpr := arith [cmp arith]
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseArith()
	if err != nil {
		return nil, err
	}
	ops := map[tokKind]string{
		tokLe: "<=", tokLt: "<", tokGe: ">=", tokGt: ">", tokEq: "==", tokNe: "!=",
	}
	if op, ok := ops[p.peek().kind]; ok {
		p.next()
		r, err := p.parseArith()
		if err != nil {
			return nil, err
		}
		return eCmp{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseArith() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokPlus:
			op = "+"
		case tokMinus:
			op = "-"
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = eBin{Op: op, L: l, R: r}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokStar:
			op = "*"
		case tokSlash:
			op = "/"
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = eBin{Op: op, L: l, R: r}
	}
}

func (p *parser) parseFactor() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		return eNum{V: t.num}, nil
	case tokIdent:
		if isKeyword(t.text) && !strings.EqualFold(t.text, "inf") {
			return nil, p.errf("unexpected keyword %q in expression", t.text)
		}
		p.next()
		if strings.EqualFold(t.text, "inf") {
			return eNum{V: inf()}, nil
		}
		return eVar{Name: t.text}, nil
	case tokMinus:
		p.next()
		f, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return eBin{Op: "-", L: eNum{V: 0}, R: f}, nil
	case tokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.expect(tokRParen) {
			return nil, p.err
		}
		return e, nil
	default:
		return nil, p.errf("expected expression, got %s", t.kind)
	}
}

// --- parser plumbing ---

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("nmsccp: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

// expect consumes a token of the given kind, recording an error
// otherwise.
func (p *parser) expect(kind tokKind) bool {
	if p.peek().kind != kind {
		p.err = p.errf("expected %s, got %s", kind, p.peek().kind)
		return false
	}
	p.next()
	return true
}

func (p *parser) expectIdent() string {
	if p.peek().kind != tokIdent {
		p.err = p.errf("expected identifier, got %s", p.peek().kind)
		return ""
	}
	return p.next().text
}

func (p *parser) expectKeyword(kw string) bool {
	if p.peek().kind != tokIdent || !strings.EqualFold(p.peek().text, kw) {
		p.err = p.errf("expected %q, got %q", kw, p.peek().text)
		return false
	}
	p.next()
	return true
}

func (p *parser) expectInt() (int, bool) {
	if p.peek().kind != tokNumber {
		p.err = p.errf("expected integer, got %s", p.peek().kind)
		return 0, false
	}
	t := p.next()
	v := int(t.num)
	if float64(v) != t.num {
		p.err = fmt.Errorf("nmsccp: %d:%d: expected integer, got %s", t.line, t.col, t.text)
		return 0, false
	}
	return v, true
}
