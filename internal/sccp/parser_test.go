package sccp

import (
	"strings"
	"testing"

	"softsoa/internal/core"
)

// example1Src is the paper's Example 1 in the surface syntax:
// P1 tells c4 = x+5, raises sp2 and waits for sp1 within [10,2];
// P2 tells c3 = 2x, raises sp1 and waits for sp2 within [4,1].
const example1Src = `
semiring weighted.
var x in 0..10.
var spv1 in 0..1.
var spv2 in 0..1.

# Provider P1 and provider P2 merge their policies (Fig. 7).
p1() :: tell(x + 5) -> tell(spv2 == 1) -> ask(spv1 == 1)->[10,2] success.
p2() :: tell(2 * x) -> tell(spv1 == 1) -> ask(spv2 == 1)->[4,1] success.

main :: p1() || p2().
`

func TestParseAndRunExample1(t *testing.T) {
	c, err := ParseAndCompile(example1Src)
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine()
	status, err := m.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	if status != Stuck {
		t.Fatalf("status = %v, want stuck (no agreement, as in the paper)", status)
	}
	if got := m.Store().Blevel(); got != 5 {
		t.Fatalf("σ⇓∅ = %v, want 5", got)
	}
}

const example2Src = `
semiring weighted.
var x in 0..10.
var spv1 in 0..1.
var spv2 in 0..1.

p1() :: tell(x + 5) -> tell(spv2 == 1) ->
        ask(spv1 == 1)->[10,2] retract(x + 3)->[10,2] success.
p2() :: tell(2 * x) -> tell(spv1 == 1) -> ask(spv2 == 1)->[4,1] success.

main :: p1() || p2().
`

func TestParseAndRunExample2(t *testing.T) {
	c, err := ParseAndCompile(example2Src)
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine()
	status, err := m.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	if status != Succeeded {
		t.Fatalf("status = %v, want succeeded", status)
	}
	if got := m.Store().Blevel(); got != 2 {
		t.Fatalf("σ⇓∅ = %v, want 2", got)
	}
	sx := core.ProjectTo(m.Store().Constraint(), "x")
	if got := sx.AtLabels("3"); got != 8 {
		t.Fatalf("σ(x=3) = %v, want 2*3+2 = 8", got)
	}
}

const example3Src = `
semiring weighted.
var x in 0..10.
var y in 0..10.

main :: tell(x + 3) -> update{x}(y + 1) -> success.
`

func TestParseAndRunExample3(t *testing.T) {
	c, err := ParseAndCompile(example3Src)
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine()
	status, err := m.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if status != Succeeded {
		t.Fatalf("status = %v", status)
	}
	sy := core.ProjectTo(m.Store().Constraint(), "y")
	if got := sy.AtLabels("5"); got != 9 {
		t.Fatalf("σ(y=5) = %v, want 5+4 = 9", got)
	}
	if got := m.Store().Blevel(); got != 4 {
		t.Fatalf("σ⇓∅ = %v, want 4", got)
	}
}

func TestParseFuzzyProgram(t *testing.T) {
	src := `
semiring fuzzy.
var x in 1..9.
main :: tell((x - 1) / 8) -> tell((9 - x) / 8) -> success.
`
	c, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine()
	if status, _ := m.Run(20); status != Succeeded {
		t.Fatal("fuzzy program should succeed")
	}
	if got := m.Store().Blevel(); got != 0.5 {
		t.Fatalf("fuzzy agreement blevel = %v, want 0.5", got)
	}
}

func TestParseSumAndNask(t *testing.T) {
	src := `
semiring weighted.
var x in 0..5.
var flag in 0..1.
main :: ( ask(flag == 1) -> tell(x + 1) -> success
        + nask(flag == 1) -> tell(x + 2) -> success ).
`
	c, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine()
	if status, _ := m.Run(20); status != Succeeded {
		t.Fatal("sum program should succeed")
	}
	// flag is never raised: the nask branch commits; blevel 2.
	if got := m.Store().Blevel(); got != 2 {
		t.Fatalf("blevel = %v, want 2", got)
	}
}

func TestParseExists(t *testing.T) {
	src := `
semiring weighted.
var x in 0..5.
main :: exists z in 0..3 ( tell(z + x) -> success ).
`
	c, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine()
	if status, _ := m.Run(20); status != Succeeded {
		t.Fatal("exists program should succeed")
	}
	if got := m.Store().Blevel(); got != 0 {
		t.Fatalf("blevel = %v, want 0 (best z=0, x=0)", got)
	}
}

func TestParseRecursiveClauseWithProgress(t *testing.T) {
	src := `
semiring weighted.
var flag in 0..1.
raise() :: nask(flag == 1) -> tell(flag == 1) -> raise()
         + ask(flag == 1) -> success.
main :: raise().
`
	c, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine()
	status, err := m.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if status != Succeeded {
		t.Fatalf("status = %v", status)
	}
}

func TestParseParameterisedClause(t *testing.T) {
	src := `
semiring weighted.
var a in 0..4.
var b in 0..4.
cost(v) :: tell(3 * v) -> success.
main :: cost(a) || cost(b).
`
	c, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine()
	if status, _ := m.Run(30); status != Succeeded {
		t.Fatal("parameterised program should succeed")
	}
	sa := core.ProjectTo(m.Store().Constraint(), "a")
	if got := sa.AtLabels("2"); got != 6 {
		t.Fatalf("σ(a=2) = %v, want 6", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no main", "semiring weighted.\nvar x in 0..1.", "no main"},
		{"bad semiring", "semiring bogus.\nmain :: success.", "unknown semiring"},
		{"undeclared var", "main :: tell(x + 1) -> success.", "undeclared variable"},
		{"empty domain", "var x in 5..2.\nmain :: success.", "empty domain"},
		{"dup var", "var x in 0..1.\nvar x in 0..1.\nmain :: success.", "declared twice"},
		{"dup clause", "p() :: success.\np() :: success.\nmain :: success.", "declared twice"},
		{"unguarded sum", "var x in 0..1.\nmain :: tell(x) -> success + success.", "ask/nask"},
		{"bad call", "main :: nope().", "undeclared clause"},
		{"bad arity", "p(v) :: success.\nmain :: p().", "expects 1 args"},
		{"keyword var", "var tell in 0..1.\nmain :: success.", "keyword"},
		{"inverted interval", "var x in 0..9.\nmain :: tell(x)->[2,10] success.", "better than upper"},
		{"update no vars", "var x in 0..1.\nmain :: update{}(x) -> success.", "at least one"},
		{"undeclared update var", "var x in 0..1.\nmain :: update{q}(x) -> success.", "undeclared update"},
		{"lex error", "main :: success. @", "unexpected character"},
		{"call undeclared arg", "p(v) :: success.\nmain :: p(q).", "undeclared variable"},
		{"missing arrow", "var x in 0..1.\nmain :: tell(x) success.", "expected '->'"},
	}
	for _, tc := range cases {
		_, err := ParseAndCompile(tc.src)
		if err == nil {
			t.Errorf("%s: expected error containing %q, got nil", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lex("p1() :: tell(x+5)->[10,2.5] success. # comment\n// also comment\nvar y in 0..3.")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokKind{
		tokIdent, tokLParen, tokRParen, tokDefine, tokIdent, tokLParen,
		tokIdent, tokPlus, tokNumber, tokRParen, tokArrow, tokLBracket,
		tokNumber, tokComma, tokNumber, tokRBracket, tokIdent, tokDot,
		tokIdent, tokIdent, tokIdent, tokNumber, tokDotDot, tokNumber, tokDot,
		tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	// Fractional vs range dots.
	if toks[14].num != 2.5 {
		t.Errorf("number token = %v, want 2.5", toks[14].num)
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := lex("a\n  bb")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].line != 1 || toks[0].col != 1 {
		t.Errorf("first token at %d:%d", toks[0].line, toks[0].col)
	}
	if toks[1].line != 2 || toks[1].col != 3 {
		t.Errorf("second token at %d:%d, want 2:3", toks[1].line, toks[1].col)
	}
}

func TestDivisionByZeroIsZeroElement(t *testing.T) {
	src := `
semiring weighted.
var x in 0..2.
main :: tell(1 / x) -> success.
`
	c, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine()
	if status, _ := m.Run(10); status != Succeeded {
		t.Fatal("program should succeed")
	}
	sx := core.ProjectTo(m.Store().Constraint(), "x")
	if got := sx.AtLabels("0"); got != inf() {
		t.Errorf("σ(x=0) = %v, want +inf (division by zero is Zero)", got)
	}
	if got := sx.AtLabels("2"); got != 0.5 {
		t.Errorf("σ(x=2) = %v, want 0.5", got)
	}
}

func TestNegativeWeightedValuesClampToOne(t *testing.T) {
	src := `
semiring weighted.
var x in 0..3.
main :: tell(x - 2) -> success.
`
	c, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine()
	if status, _ := m.Run(10); status != Succeeded {
		t.Fatal("program should succeed")
	}
	sx := core.ProjectTo(m.Store().Constraint(), "x")
	if got := sx.AtLabels("0"); got != 0 {
		t.Errorf("σ(x=0) = %v, want 0 (clamped)", got)
	}
	if got := sx.AtLabels("3"); got != 1 {
		t.Errorf("σ(x=3) = %v, want 1", got)
	}
}
