package sccp

import (
	"fmt"
	"math"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

func inf() float64 { return math.Inf(1) }

// Compiled is an executable nmsccp program: a space, procedure
// definitions and the main agent, ready to run on a Machine.
type Compiled struct {
	Space *core.Space[float64]
	Defs  Defs[float64]
	Main  Agent[float64]
	// Semiring is the program's c-semiring.
	Semiring semiring.Semiring[float64]
	// ProblemVars are the declared (non-fresh) variables.
	ProblemVars []core.Variable
}

// NewMachine returns a machine for the compiled program.
func (c *Compiled) NewMachine(opts ...MachineOption[float64]) *Machine[float64] {
	opts = append([]MachineOption[float64]{WithDefs[float64](c.Defs)}, opts...)
	return NewMachine(c.Space, c.Main, opts...)
}

// Compile turns a parsed program into an executable one. Constraint
// expressions compile to soft constraints whose value is the
// expression's result coerced into the semiring carrier (clamped to
// ℝ⁺ for weighted, [0,1] for fuzzy/probabilistic); comparison
// expressions compile to crisp One/Zero constraints. Division by
// zero yields the semiring Zero (total unacceptability).
func Compile(prog *Program) (*Compiled, error) {
	var sr semiring.Semiring[float64]
	var parser semiring.ValueParser[float64]
	var coerce func(float64) float64
	switch prog.SemiringName {
	case "weighted":
		w := semiring.Weighted{}
		sr, parser = w, w
		coerce = func(v float64) float64 {
			if math.IsNaN(v) {
				return math.Inf(1) // the weighted Zero
			}
			if v < 0 {
				return 0
			}
			return v
		}
	case "fuzzy":
		f := semiring.Fuzzy{}
		sr, parser = f, f
		coerce = clampUnit
	case "probabilistic":
		pr := semiring.Probabilistic{}
		sr, parser = pr, pr
		coerce = clampUnit
	default:
		return nil, fmt.Errorf("nmsccp: unsupported semiring %q", prog.SemiringName)
	}

	space := core.NewSpace[float64](sr)
	env := map[string]core.Variable{}
	var problemVars []core.Variable
	for _, vd := range prog.Vars {
		if _, dup := env[vd.Name]; dup {
			return nil, fmt.Errorf("nmsccp: variable %q declared twice", vd.Name)
		}
		v := space.AddVariable(core.Variable(vd.Name), core.IntDomain(vd.Lo, vd.Hi))
		env[vd.Name] = v
		problemVars = append(problemVars, v)
	}

	c := &compiler{space: space, sr: sr, parser: parser, coerce: coerce, prog: prog}
	defs := Defs[float64]{}
	for _, cl := range prog.Clauses {
		cl := cl
		if _, dup := defs[cl.Name]; dup {
			return nil, fmt.Errorf("nmsccp: clause %q declared twice", cl.Name)
		}
		// Validate the body at compile time against a scratch env.
		scratch := cloneEnv(env)
		for _, p := range cl.Params {
			scratch[p] = core.Variable(p)
		}
		if err := c.checkAgent(cl.Body, scratch, map[string]bool{cl.Name: true}); err != nil {
			return nil, fmt.Errorf("nmsccp: clause %q: %w", cl.Name, err)
		}
		defs.Declare(cl.Name, len(cl.Params), func(args []core.Variable) Agent[float64] {
			callEnv := cloneEnv(env)
			for i, p := range cl.Params {
				callEnv[p] = args[i]
			}
			return c.agent(cl.Body, callEnv)
		})
	}
	if err := c.checkAgent(prog.Main, cloneEnv(env), nil); err != nil {
		return nil, fmt.Errorf("nmsccp: main: %w", err)
	}
	// Check calls resolve with the right arity.
	if err := checkCalls(prog, defs); err != nil {
		return nil, err
	}
	main := c.agent(prog.Main, cloneEnv(env))
	return &Compiled{
		Space:       space,
		Defs:        defs,
		Main:        main,
		Semiring:    sr,
		ProblemVars: problemVars,
	}, nil
}

// ParseAndCompile parses and compiles a program text.
func ParseAndCompile(src string) (*Compiled, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(prog)
}

func clampUnit(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func cloneEnv(env map[string]core.Variable) map[string]core.Variable {
	out := make(map[string]core.Variable, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

type compiler struct {
	space  *core.Space[float64]
	sr     semiring.Semiring[float64]
	parser semiring.ValueParser[float64]
	coerce func(float64) float64
	prog   *Program
}

// checkAgent validates names, arities and thresholds without building
// constraints (clause bodies are built lazily per call).
func (c *compiler) checkAgent(a AstAgent, env map[string]core.Variable, inClause map[string]bool) error {
	switch ag := a.(type) {
	case aSuccess:
		return nil
	case aAction:
		for _, name := range freeVars(ag.Expr, nil) {
			if _, ok := env[name]; !ok {
				return fmt.Errorf("undeclared variable %q", name)
			}
		}
		for _, v := range ag.UpdateVars {
			if _, ok := env[v]; !ok {
				return fmt.Errorf("undeclared update variable %q", v)
			}
		}
		if _, err := c.checkOf(ag); err != nil {
			return err
		}
		return c.checkAgent(ag.Next, env, inClause)
	case aPar:
		if err := c.checkAgent(ag.Left, env, inClause); err != nil {
			return err
		}
		return c.checkAgent(ag.Right, env, inClause)
	case aSum:
		for _, b := range ag.Branches {
			if err := c.checkAgent(b, env, inClause); err != nil {
				return err
			}
		}
		return nil
	case aExists:
		if ag.Hi < ag.Lo {
			return fmt.Errorf("empty domain %d..%d for local %q", ag.Lo, ag.Hi, ag.Var)
		}
		inner := cloneEnv(env)
		inner[ag.Var] = core.Variable(ag.Var)
		return c.checkAgent(ag.Body, inner, inClause)
	case aTimeout:
		if err := c.checkAgent(ag.Body, env, inClause); err != nil {
			return err
		}
		return c.checkAgent(ag.Else, env, inClause)
	case aCall:
		for _, arg := range ag.Args {
			if _, ok := env[arg]; !ok {
				return fmt.Errorf("undeclared variable %q passed to %q", arg, ag.Name)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown agent node %T", a)
	}
}

func checkCalls(prog *Program, defs Defs[float64]) error {
	var walk func(a AstAgent) error
	walk = func(a AstAgent) error {
		switch ag := a.(type) {
		case aAction:
			return walk(ag.Next)
		case aPar:
			if err := walk(ag.Left); err != nil {
				return err
			}
			return walk(ag.Right)
		case aSum:
			for _, b := range ag.Branches {
				if err := walk(b); err != nil {
					return err
				}
			}
			return nil
		case aExists:
			return walk(ag.Body)
		case aTimeout:
			if err := walk(ag.Body); err != nil {
				return err
			}
			return walk(ag.Else)
		case aCall:
			cl, ok := defs[ag.Name]
			if !ok {
				return fmt.Errorf("nmsccp: call to undeclared clause %q", ag.Name)
			}
			if cl.Arity != len(ag.Args) {
				return fmt.Errorf("nmsccp: %q expects %d args, got %d", ag.Name, cl.Arity, len(ag.Args))
			}
			return nil
		default:
			return nil
		}
	}
	for _, cl := range prog.Clauses {
		if err := walk(cl.Body); err != nil {
			return err
		}
	}
	return walk(prog.Main)
}

// checkOf builds the Check for an action's thresholds.
func (c *compiler) checkOf(ag aAction) (Check[float64], error) {
	k := Check[float64]{}
	if ag.Lower != "" {
		v, err := c.parser.ParseValue(ag.Lower)
		if err != nil {
			return k, fmt.Errorf("lower threshold: %w", err)
		}
		k.LowerValue = &v
	}
	if ag.Upper != "" {
		v, err := c.parser.ParseValue(ag.Upper)
		if err != nil {
			return k, fmt.Errorf("upper threshold: %w", err)
		}
		k.UpperValue = &v
	}
	if k.LowerValue != nil && k.UpperValue != nil &&
		semiring.Gt(c.sr, *k.LowerValue, *k.UpperValue) {
		return k, fmt.Errorf("lower threshold %s better than upper %s",
			c.sr.Format(*k.LowerValue), c.sr.Format(*k.UpperValue))
	}
	return k, nil
}

// agent compiles a checked AST into an executable agent under env.
func (c *compiler) agent(a AstAgent, env map[string]core.Variable) Agent[float64] {
	switch ag := a.(type) {
	case aSuccess:
		return Success[float64]{}
	case aAction:
		check, err := c.checkOf(ag)
		if err != nil {
			panic(fmt.Sprintf("nmsccp: internal: unvalidated threshold: %v", err))
		}
		con := c.constraint(ag.Expr, env)
		next := c.agent(ag.Next, env)
		switch ag.Kind {
		case "tell":
			return Tell[float64]{C: con, Check: check, Next: next}
		case "ask":
			return Ask[float64]{C: con, Check: check, Next: next}
		case "nask":
			return Nask[float64]{C: con, Check: check, Next: next}
		case "retract":
			return Retract[float64]{C: con, Check: check, Next: next}
		case "update":
			vars := make([]core.Variable, len(ag.UpdateVars))
			for i, v := range ag.UpdateVars {
				vars[i] = env[v]
			}
			return Update[float64]{Vars: vars, C: con, Check: check, Next: next}
		default:
			panic(fmt.Sprintf("nmsccp: internal: unknown action %q", ag.Kind))
		}
	case aPar:
		return Parallel[float64]{Left: c.agent(ag.Left, env), Right: c.agent(ag.Right, env)}
	case aSum:
		branches := make([]Agent[float64], len(ag.Branches))
		for i, b := range ag.Branches {
			branches[i] = c.agent(b, env)
		}
		return MustSum(branches...)
	case aExists:
		outer := cloneEnv(env)
		return Exists[float64]{
			Prefix: core.Variable(ag.Var),
			Domain: core.IntDomain(ag.Lo, ag.Hi),
			Body: func(fresh core.Variable) Agent[float64] {
				inner := cloneEnv(outer)
				inner[ag.Var] = fresh
				return c.agent(ag.Body, inner)
			},
		}
	case aTimeout:
		return Timeout[float64]{
			Budget: ag.Budget,
			Body:   c.agent(ag.Body, env),
			Else:   c.agent(ag.Else, env),
		}
	case aCall:
		args := make([]core.Variable, len(ag.Args))
		for i, name := range ag.Args {
			args[i] = env[name]
		}
		return Call[float64]{Name: ag.Name, Args: args}
	default:
		panic(fmt.Sprintf("nmsccp: internal: unknown agent node %T", a))
	}
}

// constraint compiles an expression into a soft constraint whose
// scope is the expression's free variables under env.
func (c *compiler) constraint(e Expr, env map[string]core.Variable) *core.Constraint[float64] {
	names := freeVars(e, nil)
	scope := make([]core.Variable, 0, len(names))
	seen := map[core.Variable]bool{}
	for _, n := range names {
		v := env[n]
		if !seen[v] {
			seen[v] = true
			scope = append(scope, v)
		}
	}
	sr := c.sr
	return core.NewConstraint(c.space, scope, func(a core.Assignment) float64 {
		switch ex := e.(type) {
		case eCmp:
			l := evalArith(ex.L, a, env)
			r := evalArith(ex.R, a, env)
			ok := false
			switch ex.Op {
			case "<=":
				ok = l <= r
			case "<":
				ok = l < r
			case ">=":
				ok = l >= r
			case ">":
				ok = l > r
			case "==":
				ok = l == r
			case "!=":
				ok = l != r
			}
			if ok {
				return sr.One()
			}
			return sr.Zero()
		default:
			return c.coerce(evalArith(e, a, env))
		}
	})
}

func evalArith(e Expr, a core.Assignment, env map[string]core.Variable) float64 {
	switch ex := e.(type) {
	case eNum:
		return ex.V
	case eVar:
		return a.Num(env[ex.Name])
	case eBin:
		l := evalArith(ex.L, a, env)
		r := evalArith(ex.R, a, env)
		switch ex.Op {
		case "+":
			return l + r
		case "-":
			return l - r
		case "*":
			return l * r
		case "/":
			if r == 0 {
				return math.NaN() // coerced to the semiring Zero
			}
			return l / r
		}
	case eCmp:
		// Nested comparisons evaluate to 1/0 so they can participate
		// in arithmetic.
		l := evalArith(ex.L, a, env)
		r := evalArith(ex.R, a, env)
		ok := false
		switch ex.Op {
		case "<=":
			ok = l <= r
		case "<":
			ok = l < r
		case ">=":
			ok = l >= r
		case ">":
			ok = l > r
		case "==":
			ok = l == r
		case "!=":
			ok = l != r
		}
		if ok {
			return 1
		}
		return 0
	}
	return math.NaN()
}

// freeVars appends the distinct variable names of e to acc.
func freeVars(e Expr, acc []string) []string {
	switch ex := e.(type) {
	case eVar:
		for _, n := range acc {
			if n == ex.Name {
				return acc
			}
		}
		return append(acc, ex.Name)
	case eBin:
		return freeVars(ex.R, freeVars(ex.L, acc))
	case eCmp:
		return freeVars(ex.R, freeVars(ex.L, acc))
	default:
		return acc
	}
}
