package sccp

import "fmt"

// Timeout is the timed extension of nmsccp (after Bistarelli,
// Gabbrielli, Meo & Santini, "Timed soft concurrent constraint
// programs", COORDINATION 2008 — the mechanism the paper's Example 2
// points to for timing out a negotiation). The agent behaves as Body
// if Body can act; every time the scheduler visits the node while
// Body is blocked one time unit elapses (an observable "tick"
// transition), and when the budget is exhausted the agent becomes
// Else. It is how a negotiator abandons a partner that never answers.
type Timeout[T any] struct {
	// Budget is the number of remaining time units.
	Budget int
	// Body is the agent given a chance to act before the deadline.
	Body Agent[T]
	// Else is the continuation after the deadline passes.
	Else Agent[T]
}

func (Timeout[T]) isAgent() {}

// String includes the remaining budget so that countdown is visible
// as progress to the machine's administrative-rewrite detection.
func (a Timeout[T]) String() string {
	return fmt.Sprintf("timeout(%d){%s}else{%s}", a.Budget, a.Body, a.Else)
}

// stepTimeout implements the three timed rules:
//
//	⟨A,σ⟩ → ⟨A',σ'⟩  ⟹  ⟨timeout(t){A}{B},σ⟩ → ⟨A',σ'⟩        (t > 0)
//	A blocked        ⟹  ⟨timeout(t){A}{B},σ⟩ → ⟨timeout(t-1){A}{B},σ⟩ (tick, t > 0)
//	                     timeout(0){A}{B} ≡ B
func (m *Machine[T]) stepTimeout(ag Timeout[T], depth int) (Agent[T], bool, error) {
	if ag.Budget <= 0 {
		// Deadline already passed: administratively become Else and
		// give it an immediate chance to act.
		next, applied, err := m.step(ag.Else, depth+1)
		if err != nil {
			return ag, false, err
		}
		return next, applied, nil
	}
	next, applied, err := m.step(ag.Body, depth+1)
	if err != nil {
		return ag, false, err
	}
	if applied {
		m.lastEvent().Rule += " (via Timeout)"
		return next, true, nil
	}
	if !agentEq[T](ag.Body, next) {
		// The body rewrote administratively; keep the timer running.
		return Timeout[T]{Budget: ag.Budget, Body: next, Else: ag.Else}, false, nil
	}
	// The body is blocked: one time unit passes. Ticks are real
	// transitions — time is observable — so a lone timer runs the
	// fuel down rather than deadlocking the machine.
	out := Timeout[T]{Budget: ag.Budget - 1, Body: ag.Body, Else: ag.Else}
	m.record("Tick Timeout", out, nil, Check[T]{})
	return out, true, nil
}
