package sccp_test

import (
	"fmt"
	"math"

	"softsoa/internal/core"
	"softsoa/internal/sccp"
	"softsoa/internal/semiring"
)

// A complete nmsccp program in the surface syntax: the paper's
// Example 2 negotiation, where a retract relaxes the merged policy
// until both providers accept.
func ExampleParseAndCompile() {
	src := `
semiring weighted.
var x in 0..10.
var spv1 in 0..1.
var spv2 in 0..1.

p1() :: tell(x + 5) -> tell(spv2 == 1) ->
        ask(spv1 == 1)->[10,2] retract(x + 3)->[10,2] success.
p2() :: tell(2 * x) -> tell(spv1 == 1) -> ask(spv2 == 1)->[4,1] success.

main :: p1() || p2().
`
	compiled, err := sccp.ParseAndCompile(src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	m := compiled.NewMachine()
	status, _ := m.Run(300)
	fmt.Println("status:", status)
	fmt.Println("agreement level:", compiled.Semiring.Format(m.Store().Blevel()))
	// Output:
	// status: succeeded
	// agreement level: 2
}

// Building agents programmatically: a guarded choice commits to
// whichever branch is enabled.
func ExampleMachine() {
	s := core.NewSpace[float64](semiring.Weighted{})
	flag := s.AddVariable("flag", core.IntDomain(0, 1))
	raised := core.NewConstraint(s, []core.Variable{flag}, func(a core.Assignment) float64 {
		if a.Num(flag) == 1 {
			return 0 // the weighted One
		}
		return math.Inf(1)
	})
	choice := sccp.MustSum[float64](
		sccp.Ask[float64]{C: raised, Next: sccp.Success[float64]{}},
		sccp.Nask[float64]{C: raised, Next: sccp.Tell[float64]{C: raised, Next: sccp.Success[float64]{}}},
	)
	m := sccp.NewMachine[float64](s, choice)
	status, _ := m.Run(10)
	fmt.Println(status)
	fmt.Println("transitions:", len(m.Trace()))
	// Output:
	// succeeded
	// transitions: 2
}
