package sccp

import (
	"testing"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

// storeWith returns a weighted store σ = c over a fresh space, plus
// the space.
func storeWith(t *testing.T, level float64) (*core.Space[float64], *core.Constraint[float64]) {
	t.Helper()
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("x", core.IntDomain(0, 3))
	c := core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 {
		return level + a.Num(x)
	})
	return s, c
}

func TestUnrestrictedAlwaysHolds(t *testing.T) {
	sr := semiring.Weighted{}
	_, sigma := storeWith(t, 7)
	if !Unrestricted[float64]().Holds(sr, sigma) {
		t.Error("unrestricted check must always hold")
	}
}

func TestAtLeastThreshold(t *testing.T) {
	sr := semiring.Weighted{}
	_, sigma := storeWith(t, 7) // blevel 7
	if !AtLeast[float64](10).Holds(sr, sigma) {
		t.Error("blevel 7 satisfies 'at least as good as cost 10'")
	}
	if AtLeast[float64](5).Holds(sr, sigma) {
		t.Error("blevel 7 is strictly worse than cost 5: must fail")
	}
	if !AtLeast[float64](7).Holds(sr, sigma) {
		t.Error("equality at the lower threshold must pass")
	}
}

func TestAtMostThreshold(t *testing.T) {
	sr := semiring.Weighted{}
	_, sigma := storeWith(t, 7)
	if !AtMost[float64](5).Holds(sr, sigma) {
		t.Error("blevel 7 is not better than 5: must pass")
	}
	if AtMost[float64](9).Holds(sr, sigma) {
		t.Error("blevel 7 is strictly better than 9: 'too good' must fail")
	}
	if !AtMost[float64](7).Holds(sr, sigma) {
		t.Error("equality at the upper threshold must pass")
	}
}

// TestAllFourCheckedTransitionForms exercises C1–C4 of Fig. 3.
func TestAllFourCheckedTransitionForms(t *testing.T) {
	sr := semiring.Weighted{}
	s, sigma := storeWith(t, 7)

	// C1: both value thresholds.
	if !Between[float64](sr, 10, 5).Holds(sr, sigma) {
		t.Error("C1: 7 ∈ [10,5] must hold")
	}
	if Between[float64](sr, 6, 5).Holds(sr, sigma) {
		t.Error("C1: 7 ∉ [6,5] must fail")
	}

	// φ thresholds: φ1 = a constraint strictly above σ pointwise
	// (cheaper), φ2 = one strictly below (dearer).
	x := core.Variable("x")
	cheaper := core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 {
		return 1 + a.Num(x)
	})
	dearer := core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 {
		return 20 + a.Num(x)
	})

	// C2: constraint upper (φ2) + value lower (a1).
	c2 := Check[float64]{UpperCon: cheaper, LowerValue: fp(10)}
	if !c2.Holds(sr, sigma) {
		t.Error("C2: σ not strictly above φ2 and within a1 must hold")
	}
	c2bad := Check[float64]{UpperCon: dearer, LowerValue: fp(10)}
	if c2bad.Holds(sr, sigma) {
		t.Error("C2: σ strictly above φ2=dearer must fail (too good)")
	}

	// C3: value upper (a2) + constraint lower (φ1).
	c3 := Check[float64]{UpperValue: fp(5), LowerCon: dearer}
	if !c3.Holds(sr, sigma) {
		t.Error("C3: σ not below φ1=dearer and not better than 5 must hold")
	}
	c3bad := Check[float64]{UpperValue: fp(5), LowerCon: cheaper}
	if c3bad.Holds(sr, sigma) {
		t.Error("C3: σ strictly below φ1=cheaper must fail (too weak)")
	}

	// C4: both constraint thresholds.
	c4 := BetweenConstraints(dearer, cheaper)
	if !c4.Holds(sr, sigma) {
		t.Error("C4: dearer ⊑ σ ⊑ cheaper must hold")
	}
}

func fp(v float64) *float64 { return &v }

func TestBetweenConstraintsPanicsOnInvertedPair(t *testing.T) {
	s, _ := storeWith(t, 7)
	x := core.Variable("x")
	lo := core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 { return 1 })
	hi := core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 { return 9 })
	defer func() {
		if recover() == nil {
			t.Error("expected panic: φ1 strictly above φ2")
		}
	}()
	BetweenConstraints(lo, hi) // lo (cost 1) is strictly better: invalid as lower bound vs hi
}

func TestCheckString(t *testing.T) {
	sr := semiring.Weighted{}
	if got := Unrestricted[float64]().String(); got != "→" {
		t.Errorf("unrestricted String = %q", got)
	}
	if got := Between[float64](sr, 10, 2).String(); got == "→" {
		t.Errorf("bounded check should render thresholds, got %q", got)
	}
	s, _ := storeWith(t, 1)
	k := BetweenConstraints(core.Bottom(s), core.Top(s))
	if got := k.String(); got == "→" {
		t.Errorf("constraint thresholds should render, got %q", got)
	}
}

func TestMachineStatusAccessor(t *testing.T) {
	s, c := storeWith(t, 2)
	m := NewMachine[float64](s, Tell[float64]{C: c, Next: Success[float64]{}})
	if m.Status() != Running {
		t.Errorf("initial status = %v", m.Status())
	}
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.Status() != Succeeded {
		t.Errorf("final status = %v", m.Status())
	}
}

// TestNestedComparisonArithmetic exercises comparisons inside
// arithmetic expressions: they evaluate to 1/0.
func TestNestedComparisonArithmetic(t *testing.T) {
	src := `
semiring weighted.
var x in 0..3.
main :: tell(5 * (x >= 2) + 1) -> success.
`
	c, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine()
	if status, _ := m.Run(10); status != Succeeded {
		t.Fatal("program should succeed")
	}
	sx := core.ProjectTo(m.Store().Constraint(), "x")
	if got := sx.AtLabels("1"); got != 1 {
		t.Errorf("σ(x=1) = %v, want 1 (comparison false)", got)
	}
	if got := sx.AtLabels("3"); got != 6 {
		t.Errorf("σ(x=3) = %v, want 6 (comparison true)", got)
	}
}

func TestProbabilisticProgram(t *testing.T) {
	src := `
semiring probabilistic.
var x in 0..4.
main :: tell((80 + 5 * x) / 100) -> tell(0.9) -> success.
`
	c, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine()
	if status, _ := m.Run(10); status != Succeeded {
		t.Fatal("program should succeed")
	}
	// Best: x=4 → 1.0 × 0.9 = 0.9.
	if got := m.Store().Blevel(); got != 0.9 {
		t.Errorf("blevel = %v, want 0.9", got)
	}
}

func TestFuzzyValueOverflowClamps(t *testing.T) {
	src := `
semiring fuzzy.
var x in 0..3.
main :: tell(x * 9) -> success.
`
	c, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine()
	if status, _ := m.Run(10); status != Succeeded {
		t.Fatal("program should succeed")
	}
	sx := core.ProjectTo(m.Store().Constraint(), "x")
	if got := sx.AtLabels("2"); got != 1 {
		t.Errorf("σ(x=2) = %v, want clamped 1", got)
	}
	if got := sx.AtLabels("0"); got != 0 {
		t.Errorf("σ(x=0) = %v, want 0", got)
	}
}
