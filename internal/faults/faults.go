// Package faults is a deterministic fault injector for chaos-testing
// the broker's dependability layer. The paper's premise is that a
// dependable SOA must survive providers that slow down, drop
// requests, or degrade below the signed service level; this package
// manufactures exactly those conditions — reproducibly, from a seed —
// so the violation/breaker/failover machinery can be exercised
// end-to-end.
//
// An Injector works at three levels:
//
//   - as an http.RoundTripper (via Transport) it injects transport
//     faults between a broker client and daemon: added latency,
//     dropped connections, and synthesized 5xx responses;
//   - as a provider-level wrapper (via MeasureProvider) it perturbs
//     the service levels a prober would observe, simulating a
//     provider running worse than its agreed QoS;
//   - as a disk-write hook (via WALFault) it stalls, tears, or
//     rejects the broker's WAL appends, exercising the durable-state
//     recovery path.
//
// Determinism: all coin flips come from one seeded source guarded by
// a mutex. Sequential drivers replay exactly; concurrent drivers
// should use probabilities of 0 or 1 per fault kind if they need
// bit-exact runs.
package faults

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"softsoa/internal/obs"
)

// Plan configures which faults an Injector produces and how often.
// The zero value injects nothing.
type Plan struct {
	// Seed initialises the deterministic random source.
	Seed int64

	// Providers restricts provider-level degradation (MeasureProvider)
	// to the named providers; empty means every provider is affected.
	Providers []string

	// Latency is added to a request with probability LatencyProb.
	Latency     time.Duration
	LatencyProb float64

	// DropProb is the probability a request fails with a connection
	// error before reaching the server.
	DropProb float64

	// ErrorProb is the probability a request is answered with a
	// synthesized ErrorStatus (default 502) instead of being
	// forwarded.
	ErrorProb   float64
	ErrorStatus int

	// DegradeProb is the probability MeasureProvider perturbs an
	// observed level; DegradeFactor multiplies the true level when it
	// does. Use a factor > 1 for cost-like metrics (worse = higher)
	// and < 1 for preference-like metrics (worse = lower).
	DegradeProb   float64
	DegradeFactor float64

	// Disk faults target the broker's durable-state writes via
	// WALFault. DiskLatency stalls a WAL append with probability
	// DiskLatencyProb; TornWriteProb cuts an append partway so only a
	// prefix of the frame reaches disk (recovery must truncate it);
	// ENOSPCProb fails an append before any byte lands, as a full
	// disk would.
	DiskLatency     time.Duration
	DiskLatencyProb float64
	TornWriteProb   float64
	ENOSPCProb      float64
}

// Stats counts the faults an Injector has produced.
type Stats struct {
	Latencies     int64
	Drops         int64
	Errors        int64
	Degradations  int64
	DiskLatencies int64
	TornWrites    int64
	ENOSPC        int64
}

// Injector produces faults according to a Plan. Safe for concurrent
// use.
type Injector struct {
	mu   sync.Mutex
	rng  *rand.Rand // guarded by mu
	plan Plan       // immutable after construction

	latencies     atomic.Int64
	drops         atomic.Int64
	errors        atomic.Int64
	degradations  atomic.Int64
	diskLatencies atomic.Int64
	tornWrites    atomic.Int64
	enospc        atomic.Int64
}

// New returns an injector for the plan.
func New(plan Plan) *Injector {
	if plan.ErrorStatus == 0 {
		plan.ErrorStatus = http.StatusBadGateway
	}
	return &Injector{rng: rand.New(rand.NewSource(plan.Seed)), plan: plan}
}

// Stats returns the fault counts so far.
func (i *Injector) Stats() Stats {
	return Stats{
		Latencies:     i.latencies.Load(),
		Drops:         i.drops.Load(),
		Errors:        i.errors.Load(),
		Degradations:  i.degradations.Load(),
		DiskLatencies: i.diskLatencies.Load(),
		TornWrites:    i.tornWrites.Load(),
		ENOSPC:        i.enospc.Load(),
	}
}

// Register exposes the injector's fault counts on the metrics
// registry as the faults_injected_total family, one series per fault
// kind, read live from the counters at scrape time.
func (i *Injector) Register(reg *obs.Registry) {
	reg.CounterFuncs("faults_injected_total", "Faults injected so far, by kind.", "kind",
		map[string]func() float64{
			"latency":      func() float64 { return float64(i.latencies.Load()) },
			"drop":         func() float64 { return float64(i.drops.Load()) },
			"error":        func() float64 { return float64(i.errors.Load()) },
			"degradation":  func() float64 { return float64(i.degradations.Load()) },
			"disk_latency": func() float64 { return float64(i.diskLatencies.Load()) },
			"torn_write":   func() float64 { return float64(i.tornWrites.Load()) },
			"enospc":       func() float64 { return float64(i.enospc.Load()) },
		})
}

// hit flips the seeded coin.
func (i *Injector) hit(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rng.Float64() < p
}

// targets reports whether provider-level faults apply to provider.
func (i *Injector) targets(provider string) bool {
	if len(i.plan.Providers) == 0 {
		return true
	}
	for _, p := range i.plan.Providers {
		if p == provider {
			return true
		}
	}
	return false
}

// MeasureProvider returns the service level a monitor probe would
// observe from the provider: the true level, or a degraded one when
// the plan's degradation coin hits and the provider is targeted.
func (i *Injector) MeasureProvider(provider string, trueLevel float64) float64 {
	if !i.targets(provider) || !i.hit(i.plan.DegradeProb) {
		return trueLevel
	}
	i.degradations.Add(1)
	return trueLevel * i.plan.DegradeFactor
}

// ErrENOSPC is the error an injected full-disk WAL append fails with,
// before any byte reaches the file.
var ErrENOSPC = errors.New("faults: injected write failure: no space left on device")

// ErrTornWrite is the error an injected torn WAL append fails with; a
// prefix of the frame still lands on disk.
var ErrTornWrite = errors.New("faults: injected torn write")

// WALFault returns a write-fault hook for the broker's file store
// (store.WithWriteFault): it stalls, tears, or rejects WAL appends
// according to the plan's disk fields. A torn write cuts the frame at
// a seeded-random offset strictly inside it, so recovery always has a
// damaged tail to truncate.
func (i *Injector) WALFault() func(frame []byte) (int, error) {
	return func(frame []byte) (int, error) {
		if i.hit(i.plan.DiskLatencyProb) {
			i.diskLatencies.Add(1)
			time.Sleep(i.plan.DiskLatency)
		}
		if i.hit(i.plan.ENOSPCProb) {
			i.enospc.Add(1)
			return 0, ErrENOSPC
		}
		if i.hit(i.plan.TornWriteProb) {
			i.tornWrites.Add(1)
			i.mu.Lock()
			n := i.rng.Intn(len(frame))
			i.mu.Unlock()
			return n, ErrTornWrite
		}
		return len(frame), nil
	}
}

// DroppedError is the error returned for an injected connection drop.
type DroppedError struct{ URL string }

// Error implements error.
func (e *DroppedError) Error() string {
	return fmt.Sprintf("faults: connection to %s dropped", e.URL)
}

// Transport wraps base (nil means http.DefaultTransport) with the
// injector's transport faults. The result is an http.RoundTripper
// suitable for an *http.Client.
func (i *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &roundTripper{inj: i, base: base}
}

type roundTripper struct {
	inj  *Injector
	base http.RoundTripper
}

// RoundTrip implements http.RoundTripper: latency, then drop, then
// synthesized error, then the real request.
func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	i := rt.inj
	if i.hit(i.plan.LatencyProb) {
		i.latencies.Add(1)
		select {
		case <-time.After(i.plan.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if i.hit(i.plan.DropProb) {
		i.drops.Add(1)
		return nil, &DroppedError{URL: req.URL.String()}
	}
	if i.hit(i.plan.ErrorProb) {
		i.errors.Add(1)
		body := `<error reason="injected fault"></error>`
		return &http.Response{
			Status:        http.StatusText(i.plan.ErrorStatus),
			StatusCode:    i.plan.ErrorStatus,
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"application/xml"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	return rt.base.RoundTrip(req)
}
