package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestZeroPlanInjectsNothing(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	inj := New(Plan{})
	hc := &http.Client{Transport: inj.Transport(nil)}
	for i := 0; i < 20; i++ {
		resp, err := hc.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != "ok" {
			t.Fatalf("got %d %q", resp.StatusCode, body)
		}
	}
	if s := inj.Stats(); s != (Stats{}) {
		t.Errorf("zero plan produced faults: %+v", s)
	}
	if got := inj.MeasureProvider("p", 2); got != 2 {
		t.Errorf("MeasureProvider = %v, want true level 2", got)
	}
}

func TestDropAndError(t *testing.T) {
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
	}))
	defer ts.Close()

	inj := New(Plan{Seed: 1, DropProb: 1})
	hc := &http.Client{Transport: inj.Transport(nil)}
	_, err := hc.Get(ts.URL)
	if err == nil {
		t.Fatal("drop plan should fail the request")
	}
	var dropped *DroppedError
	if !errors.As(err, &dropped) {
		t.Errorf("err = %v, want DroppedError", err)
	}

	inj = New(Plan{Seed: 1, ErrorProb: 1})
	hc = &http.Client{Transport: inj.Transport(nil)}
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
	if string(body) != `<error reason="injected fault"></error>` {
		t.Errorf("body = %q", body)
	}
	if calls != 0 {
		t.Errorf("faulted requests reached the server %d times", calls)
	}
	if s := inj.Stats(); s.Errors != 1 {
		t.Errorf("stats = %+v, want 1 error", s)
	}
}

func TestLatencyInjection(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	inj := New(Plan{Seed: 1, Latency: 20 * time.Millisecond, LatencyProb: 1})
	hc := &http.Client{Transport: inj.Transport(nil)}
	start := time.Now()
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("request took %v, want >= 20ms of injected latency", d)
	}
	if s := inj.Stats(); s.Latencies != 1 {
		t.Errorf("stats = %+v, want 1 latency", s)
	}
}

func TestDegradationTargetsProviders(t *testing.T) {
	inj := New(Plan{Seed: 7, Providers: []string{"flaky"}, DegradeProb: 1, DegradeFactor: 3})
	if got := inj.MeasureProvider("flaky", 2); got != 6 {
		t.Errorf("degraded level = %v, want 6", got)
	}
	if got := inj.MeasureProvider("healthy", 2); got != 2 {
		t.Errorf("untargeted provider degraded to %v", got)
	}
	if s := inj.Stats(); s.Degradations != 1 {
		t.Errorf("stats = %+v, want 1 degradation", s)
	}
}

func TestSeededDeterminism(t *testing.T) {
	run := func() []bool {
		inj := New(Plan{Seed: 42, DegradeProb: 0.5, DegradeFactor: 2})
		var hits []bool
		for i := 0; i < 32; i++ {
			hits = append(hits, inj.MeasureProvider("p", 1) != 1)
		}
		return hits
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at flip %d: %v vs %v", i, a, b)
		}
	}
}
