package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"softsoa/internal/broker/store"
)

func TestZeroPlanInjectsNothing(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	inj := New(Plan{})
	hc := &http.Client{Transport: inj.Transport(nil)}
	for i := 0; i < 20; i++ {
		resp, err := hc.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != "ok" {
			t.Fatalf("got %d %q", resp.StatusCode, body)
		}
	}
	if s := inj.Stats(); s != (Stats{}) {
		t.Errorf("zero plan produced faults: %+v", s)
	}
	if got := inj.MeasureProvider("p", 2); got != 2 {
		t.Errorf("MeasureProvider = %v, want true level 2", got)
	}
}

func TestDropAndError(t *testing.T) {
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
	}))
	defer ts.Close()

	inj := New(Plan{Seed: 1, DropProb: 1})
	hc := &http.Client{Transport: inj.Transport(nil)}
	_, err := hc.Get(ts.URL)
	if err == nil {
		t.Fatal("drop plan should fail the request")
	}
	var dropped *DroppedError
	if !errors.As(err, &dropped) {
		t.Errorf("err = %v, want DroppedError", err)
	}

	inj = New(Plan{Seed: 1, ErrorProb: 1})
	hc = &http.Client{Transport: inj.Transport(nil)}
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
	if string(body) != `<error reason="injected fault"></error>` {
		t.Errorf("body = %q", body)
	}
	if calls != 0 {
		t.Errorf("faulted requests reached the server %d times", calls)
	}
	if s := inj.Stats(); s.Errors != 1 {
		t.Errorf("stats = %+v, want 1 error", s)
	}
}

func TestLatencyInjection(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	inj := New(Plan{Seed: 1, Latency: 20 * time.Millisecond, LatencyProb: 1})
	hc := &http.Client{Transport: inj.Transport(nil)}
	start := time.Now()
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("request took %v, want >= 20ms of injected latency", d)
	}
	if s := inj.Stats(); s.Latencies != 1 {
		t.Errorf("stats = %+v, want 1 latency", s)
	}
}

func TestDegradationTargetsProviders(t *testing.T) {
	inj := New(Plan{Seed: 7, Providers: []string{"flaky"}, DegradeProb: 1, DegradeFactor: 3})
	if got := inj.MeasureProvider("flaky", 2); got != 6 {
		t.Errorf("degraded level = %v, want 6", got)
	}
	if got := inj.MeasureProvider("healthy", 2); got != 2 {
		t.Errorf("untargeted provider degraded to %v", got)
	}
	if s := inj.Stats(); s.Degradations != 1 {
		t.Errorf("stats = %+v, want 1 degradation", s)
	}
}

func TestSeededDeterminism(t *testing.T) {
	run := func() []bool {
		inj := New(Plan{Seed: 42, DegradeProb: 0.5, DegradeFactor: 2})
		var hits []bool
		for i := 0; i < 32; i++ {
			hits = append(hits, inj.MeasureProvider("p", 1) != 1)
		}
		return hits
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at flip %d: %v vs %v", i, a, b)
		}
	}
}

func TestWALFaultDiskLatency(t *testing.T) {
	inj := New(Plan{DiskLatency: 20 * time.Millisecond, DiskLatencyProb: 1})
	hook := inj.WALFault()
	frame := []byte("00000000 {}\n")
	start := time.Now()
	n, err := hook(frame)
	if err != nil || n != len(frame) {
		t.Fatalf("latency-only fault = (%d, %v), want full frame and no error", n, err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("write returned after %v, want >= 20ms stall", elapsed)
	}
	if s := inj.Stats(); s.DiskLatencies != 1 {
		t.Errorf("DiskLatencies = %d, want 1", s.DiskLatencies)
	}
}

func TestWALFaultENOSPC(t *testing.T) {
	inj := New(Plan{ENOSPCProb: 1})
	hook := inj.WALFault()
	n, err := hook([]byte("00000000 {}\n"))
	if n != 0 || !errors.Is(err, ErrENOSPC) {
		t.Fatalf("full-disk fault = (%d, %v), want (0, ErrENOSPC)", n, err)
	}
	if s := inj.Stats(); s.ENOSPC != 1 {
		t.Errorf("ENOSPC = %d, want 1", s.ENOSPC)
	}
}

// TestWALFaultTornWriteAgainstStore runs the hook against the real
// file store: an injected torn append leaves a damaged tail that the
// next open truncates back to the acknowledged records.
func TestWALFaultTornWriteAgainstStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := st.Append("op", []byte(`{"n":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	inj := New(Plan{Seed: 7, TornWriteProb: 1})
	st2, err := store.Open(dir, store.WithWriteFault(inj.WALFault()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Append("op", []byte(`{"n":2}`)); !errors.Is(err, ErrTornWrite) {
		t.Fatalf("append under torn-write fault: err = %v, want ErrTornWrite", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	if s := inj.Stats(); s.TornWrites != 1 {
		t.Errorf("TornWrites = %d, want 1", s.TornWrites)
	}

	st3, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	rec, err := st3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 2 {
		t.Errorf("recovered %d records, want the 2 acknowledged ones", len(rec.Tail))
	}
	if rec.Truncated < 1 {
		t.Errorf("Truncated = %d, want >= 1 (the torn frame)", rec.Truncated)
	}
}
