package soa

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is the UDDI-style service registry of the paper's broker
// architecture (Fig. 6): providers publish QoS-enabled service
// descriptions; the broker discovers them when serving a client
// request. It is safe for concurrent use.
type Registry struct {
	mu        sync.RWMutex
	byService map[string]map[string]*Document // service → provider → doc; guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byService: make(map[string]map[string]*Document)}
}

// Publish registers (or re-registers) a provider's QoS document for
// its service. The document is validated first.
func (r *Registry) Publish(d *Document) error {
	if err := d.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	provs := r.byService[d.Service]
	if provs == nil {
		provs = make(map[string]*Document)
		r.byService[d.Service] = provs
	}
	cp := *d
	cp.Attributes = append([]Attribute(nil), d.Attributes...)
	cp.Capabilities = append([]string(nil), d.Capabilities...)
	provs[d.Provider] = &cp
	return nil
}

// Unpublish removes a provider's registration for a service.
func (r *Registry) Unpublish(service, provider string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	provs := r.byService[service]
	if provs == nil {
		return fmt.Errorf("soa: service %q not registered", service)
	}
	if _, ok := provs[provider]; !ok {
		return fmt.Errorf("soa: provider %q not registered for %q", provider, service)
	}
	delete(provs, provider)
	if len(provs) == 0 {
		delete(r.byService, service)
	}
	return nil
}

// Discover returns every registered QoS document for the service, in
// deterministic (provider-name) order. The result is a copy.
func (r *Registry) Discover(service string) []*Document {
	r.mu.RLock()
	defer r.mu.RUnlock()
	provs := r.byService[service]
	names := make([]string, 0, len(provs))
	for p := range provs {
		names = append(names, p)
	}
	sort.Strings(names)
	out := make([]*Document, 0, len(names))
	for _, p := range names {
		d := *provs[p]
		d.Attributes = append([]Attribute(nil), provs[p].Attributes...)
		d.Capabilities = append([]string(nil), provs[p].Capabilities...)
		out = append(out, &d)
	}
	return out
}

// Services returns the registered service names, sorted.
func (r *Registry) Services() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byService))
	for s := range r.byService {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of registrations.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, provs := range r.byService {
		n += len(provs)
	}
	return n
}
