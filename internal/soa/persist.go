package soa

import (
	"encoding/xml"
	"fmt"
	"os"
)

// registryFile is the XML layout persisted by SaveFile.
type registryFile struct {
	XMLName   xml.Name   `xml:"registry"`
	Documents []Document `xml:"qos"`
}

// Snapshot returns every registered document, across all services, in
// deterministic (service, provider) order.
func (r *Registry) Snapshot() []*Document {
	var out []*Document
	for _, svc := range r.Services() {
		out = append(out, r.Discover(svc)...)
	}
	return out
}

// SaveFile persists the registry to an XML file, atomically (write to
// a temp file in the same directory, then rename).
func (r *Registry) SaveFile(path string) error {
	snap := r.Snapshot()
	rf := registryFile{Documents: make([]Document, 0, len(snap))}
	for _, d := range snap {
		rf.Documents = append(rf.Documents, *d)
	}
	data, err := xml.MarshalIndent(rf, "", "  ")
	if err != nil {
		return fmt.Errorf("soa: encode registry: %w", err)
	}
	tmp, err := os.CreateTemp(dirOf(path), ".registry-*")
	if err != nil {
		return fmt.Errorf("soa: save registry: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		//lint:ignore errcheck best-effort cleanup on the write-failure path; the write error is what matters
		tmp.Close()
		//lint:ignore errcheck best-effort temp-file cleanup; the write error is what matters
		os.Remove(tmpName)
		return fmt.Errorf("soa: save registry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		//lint:ignore errcheck best-effort temp-file cleanup; the close error is what matters
		os.Remove(tmpName)
		return fmt.Errorf("soa: save registry: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		//lint:ignore errcheck best-effort temp-file cleanup; the rename error is what matters
		os.Remove(tmpName)
		return fmt.Errorf("soa: save registry: %w", err)
	}
	return nil
}

// LoadFile merges a persisted registry file into r; every document is
// validated on the way in. Documents for providers already registered
// replace the in-memory ones.
func (r *Registry) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("soa: load registry: %w", err)
	}
	var rf registryFile
	if err := xml.Unmarshal(data, &rf); err != nil {
		return fmt.Errorf("soa: decode registry: %w", err)
	}
	for i := range rf.Documents {
		if err := r.Publish(&rf.Documents[i]); err != nil {
			return fmt.Errorf("soa: load registry: document %d: %w", i, err)
		}
	}
	return nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
