package soa

import "testing"

// FuzzParse checks the QoS XML decoder never panics and that accepted
// documents survive a render/parse round trip.
func FuzzParse(f *testing.F) {
	valid, _ := sampleDoc().Render()
	seeds := [][]byte{
		valid,
		[]byte("<qos/>"),
		[]byte("<qos service='s' provider='p'><attribute name='a' metric='cost' resource='r'/></qos>"),
		[]byte("<qos service=\"s\" provider=\"p\" region=\"eu\"><capability>gzip</capability><attribute metric=\"reliability\" base=\"80\" perUnit=\"5\" resource=\"cpus\" maxUnits=\"4\"/></qos>"),
		[]byte("not xml at all"),
		[]byte("<qos service=\"s\" provider=\"p\"><attribute metric=\"cost\" resource=\"r\" maxUnits=\"-3\"/></qos>"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		d, err := Parse(data)
		if err != nil {
			return
		}
		out, err := d.Render()
		if err != nil {
			t.Fatalf("accepted document failed to render: %v", err)
		}
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, out)
		}
		if back.Service != d.Service || back.Provider != d.Provider ||
			len(back.Attributes) != len(d.Attributes) {
			t.Fatalf("round trip mismatch: %+v vs %+v", back, d)
		}
	})
}
