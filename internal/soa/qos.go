// Package soa provides the service-oriented-architecture substrate of
// Sec. 3–4 of the paper: service descriptions advertising QoS through
// XML documents, a UDDI-style registry for publication and discovery,
// the translation of QoS documents into soft constraints (the step
// the paper's broker performs before negotiating), and Service Level
// Agreements as the outcome of successful negotiations.
package soa

import (
	"encoding/xml"
	"fmt"
	"math"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

// Metric names how a QoS attribute composes across a resource range
// and across services.
type Metric string

const (
	// MetricCost is additive (weighted semiring): money, hours,
	// downtime. Lower is better.
	MetricCost Metric = "cost"
	// MetricReliability is multiplicative (probabilistic semiring):
	// success probabilities in [0,1]. Higher is better.
	MetricReliability Metric = "reliability"
	// MetricPreference is concave (fuzzy semiring): qualitative
	// levels in [0,1] combined by min.
	MetricPreference Metric = "preference"
	// MetricDowntime is additive (weighted semiring): expected
	// downtime accumulates across composed services and is minimised
	// — the paper's "minimize the downtime of the service components"
	// reading of availability.
	MetricDowntime Metric = "downtime"
)

// Valid reports whether the metric is one of the supported kinds.
func (m Metric) Valid() bool {
	switch m {
	case MetricCost, MetricReliability, MetricPreference, MetricDowntime:
		return true
	}
	return false
}

// Attribute is one QoS attribute of a service, expressed — as in the
// paper's example "the reliability is equal to 80% plus 5% for each
// other processor" — as an affine function of a resource variable:
// value(x) = Base + PerUnit·x, with x ranging over [0, MaxUnits].
// Cost attributes are in arbitrary cost units; reliability and
// preference attributes are percentages (0–100) clamped into [0,1]
// after translation.
type Attribute struct {
	// Name labels the attribute ("responseTime", "uptime", …).
	Name string `xml:"name,attr"`
	// Metric selects the composition semantics.
	Metric Metric `xml:"metric,attr"`
	// Base is the value at zero resource units.
	Base float64 `xml:"base,attr"`
	// PerUnit is the change per resource unit.
	PerUnit float64 `xml:"perUnit,attr"`
	// Resource names the resource variable ("processors", "failures").
	Resource string `xml:"resource,attr"`
	// MaxUnits bounds the resource range; the domain is [0, MaxUnits].
	MaxUnits int `xml:"maxUnits,attr"`
}

// Document is the XML QoS document a provider registers (the paper's
// "XML-based document [that] needs to be translated into a soft
// constraint").
type Document struct {
	XMLName  xml.Name `xml:"qos"`
	Service  string   `xml:"service,attr"`
	Provider string   `xml:"provider,attr"`
	// Region locates the provider's deployment; compositions crossing
	// regions pay a link penalty (see the broker's Composer).
	Region string `xml:"region,attr,omitempty"`
	// Capabilities lists the security/feature capabilities the
	// provider supports (e.g. "http-auth", "gzip"), matched against
	// client MUST/MAY policies (see internal/policy).
	Capabilities []string    `xml:"capability,omitempty"`
	Attributes   []Attribute `xml:"attribute"`
}

// Validate checks the document is translatable.
func (d *Document) Validate() error {
	if d.Service == "" {
		return fmt.Errorf("soa: QoS document without service name")
	}
	if d.Provider == "" {
		return fmt.Errorf("soa: QoS document without provider name")
	}
	if len(d.Attributes) == 0 {
		return fmt.Errorf("soa: QoS document for %q has no attributes", d.Service)
	}
	for _, a := range d.Attributes {
		if !a.Metric.Valid() {
			return fmt.Errorf("soa: attribute %q has unknown metric %q", a.Name, a.Metric)
		}
		if a.Resource == "" {
			return fmt.Errorf("soa: attribute %q names no resource", a.Name)
		}
		if a.MaxUnits < 0 {
			return fmt.Errorf("soa: attribute %q has negative MaxUnits", a.Name)
		}
	}
	return nil
}

// MarshalXML renders the document; kept as the default marshalling.
// Parse and Render are the convenience entry points.

// Parse decodes a QoS document from XML and validates it.
func Parse(data []byte) (*Document, error) {
	var d Document
	if err := xml.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("soa: decode QoS document: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Render encodes the document as XML.
func (d *Document) Render() ([]byte, error) {
	out, err := xml.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("soa: encode QoS document: %w", err)
	}
	return out, nil
}

// Attr returns the attribute for the given metric, if present.
func (d *Document) Attr(m Metric) (Attribute, bool) {
	for _, a := range d.Attributes {
		if a.Metric == m {
			return a, true
		}
	}
	return Attribute{}, false
}

// SemiringFor returns the c-semiring matching the metric over
// float64 carriers.
func SemiringFor(m Metric) (semiring.Semiring[float64], error) {
	switch m {
	case MetricCost, MetricDowntime:
		return semiring.Weighted{}, nil
	case MetricReliability:
		return semiring.Probabilistic{}, nil
	case MetricPreference:
		return semiring.Fuzzy{}, nil
	default:
		return nil, fmt.Errorf("soa: no semiring for metric %q", m)
	}
}

// ToConstraint translates the attribute into a soft constraint over
// the named resource variable, which must already be declared in the
// space. Cost values clamp below at 0; reliability and preference
// percentages divide by 100 and clamp into [0,1].
func (a Attribute) ToConstraint(s *core.Space[float64], resource core.Variable) (*core.Constraint[float64], error) {
	if !a.Metric.Valid() {
		return nil, fmt.Errorf("soa: attribute %q has unknown metric %q", a.Name, a.Metric)
	}
	if !s.HasVariable(resource) {
		return nil, fmt.Errorf("soa: resource variable %q not declared", resource)
	}
	metric := a.Metric
	base, per := a.Base, a.PerUnit
	return core.NewConstraint(s, []core.Variable{resource}, func(asst core.Assignment) float64 {
		v := base + per*asst.Num(resource)
		switch metric {
		case MetricCost, MetricDowntime:
			return math.Max(0, v)
		default:
			return math.Max(0, math.Min(1, v/100))
		}
	}), nil
}

// ResourceDomain returns the resource domain [0, MaxUnits] declared
// by the attribute.
func (a Attribute) ResourceDomain() []core.DVal {
	return core.IntDomain(0, a.MaxUnits)
}
