package soa

import (
	"os"
	"strings"
	"sync"
	"testing"

	"softsoa/internal/core"
)

func sampleDoc() *Document {
	return &Document{
		Service:  "photo-edit",
		Provider: "acme",
		Region:   "eu",
		Attributes: []Attribute{
			{Name: "uptime", Metric: MetricReliability, Base: 80, PerUnit: 5, Resource: "processors", MaxUnits: 4},
			{Name: "fee", Metric: MetricCost, Base: 10, PerUnit: 2, Resource: "processors", MaxUnits: 4},
		},
	}
}

func TestDocumentXMLRoundTrip(t *testing.T) {
	d := sampleDoc()
	data, err := d.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `service="photo-edit"`) {
		t.Errorf("rendered XML missing service attr:\n%s", data)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Provider != "acme" || back.Region != "eu" || len(back.Attributes) != 2 {
		t.Errorf("roundtrip mismatch: %+v", back)
	}
	if back.Attributes[0].PerUnit != 5 {
		t.Errorf("attribute perUnit = %v", back.Attributes[0].PerUnit)
	}
}

func TestDocumentValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Document)
	}{
		{"no service", func(d *Document) { d.Service = "" }},
		{"no provider", func(d *Document) { d.Provider = "" }},
		{"no attributes", func(d *Document) { d.Attributes = nil }},
		{"bad metric", func(d *Document) { d.Attributes[0].Metric = "latency" }},
		{"no resource", func(d *Document) { d.Attributes[0].Resource = "" }},
		{"negative units", func(d *Document) { d.Attributes[0].MaxUnits = -1 }},
	}
	for _, tc := range cases {
		d := sampleDoc()
		tc.mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
	if err := sampleDoc().Validate(); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("<qos")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := Parse([]byte("<qos/>")); err == nil {
		t.Error("expected validation error for empty doc")
	}
}

// TestPaperReliabilityExample pins the paper's motivating statement:
// "the reliability is equal to 80% plus 5% for each other processor
// used to execute the service" — a soft constraint with the 5x+80
// polynomial.
func TestPaperReliabilityExample(t *testing.T) {
	attr := Attribute{
		Name: "uptime", Metric: MetricReliability,
		Base: 80, PerUnit: 5, Resource: "processors", MaxUnits: 4,
	}
	sr, err := SemiringFor(MetricReliability)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewSpace[float64](sr)
	x := s.AddVariable("processors", attr.ResourceDomain())
	c, err := attr.ToConstraint(s, x)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"0": 0.80, "1": 0.85, "2": 0.90, "3": 0.95, "4": 1.0}
	for label, w := range want {
		if got := c.AtLabels(label); got != w {
			t.Errorf("reliability(x=%s) = %v, want %v", label, got, w)
		}
	}
	// Best level: 100% at 4 processors.
	if got := core.Blevel(c); got != 1 {
		t.Errorf("blevel = %v, want 1", got)
	}
}

func TestToConstraintClamps(t *testing.T) {
	sr, _ := SemiringFor(MetricReliability)
	s := core.NewSpace[float64](sr)
	x := s.AddVariable("x", core.IntDomain(0, 10))
	over := Attribute{Metric: MetricReliability, Base: 90, PerUnit: 5, Resource: "x", MaxUnits: 10}
	c, err := over.ToConstraint(s, x)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.AtLabels("10"); got != 1 {
		t.Errorf("value = %v, want clamped 1", got)
	}
	neg := Attribute{Metric: MetricCost, Base: 5, PerUnit: -3, Resource: "x", MaxUnits: 10}
	cc, err := neg.ToConstraint(s, x)
	if err != nil {
		t.Fatal(err)
	}
	if got := cc.AtLabels("10"); got != 0 {
		t.Errorf("cost = %v, want clamped 0", got)
	}
}

func TestToConstraintErrors(t *testing.T) {
	sr, _ := SemiringFor(MetricCost)
	s := core.NewSpace[float64](sr)
	attr := Attribute{Metric: MetricCost, Resource: "x", MaxUnits: 2}
	if _, err := attr.ToConstraint(s, "x"); err == nil {
		t.Error("undeclared resource variable should fail")
	}
	s.AddVariable("x", core.IntDomain(0, 2))
	bad := Attribute{Metric: "nope", Resource: "x"}
	if _, err := bad.ToConstraint(s, "x"); err == nil {
		t.Error("bad metric should fail")
	}
}

func TestSemiringFor(t *testing.T) {
	for _, m := range []Metric{MetricCost, MetricReliability, MetricPreference} {
		sr, err := SemiringFor(m)
		if err != nil || sr == nil {
			t.Errorf("SemiringFor(%s): %v", m, err)
		}
	}
	if _, err := SemiringFor("latency"); err == nil {
		t.Error("unknown metric should fail")
	}
}

func TestRegistryPublishDiscover(t *testing.T) {
	r := NewRegistry()
	if err := r.Publish(sampleDoc()); err != nil {
		t.Fatal(err)
	}
	d2 := sampleDoc()
	d2.Provider = "bmce"
	if err := r.Publish(d2); err != nil {
		t.Fatal(err)
	}
	docs := r.Discover("photo-edit")
	if len(docs) != 2 {
		t.Fatalf("discovered %d docs, want 2", len(docs))
	}
	if docs[0].Provider != "acme" || docs[1].Provider != "bmce" {
		t.Errorf("providers not in deterministic order: %s, %s", docs[0].Provider, docs[1].Provider)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	if svcs := r.Services(); len(svcs) != 1 || svcs[0] != "photo-edit" {
		t.Errorf("services = %v", svcs)
	}
	// Re-publishing replaces.
	d3 := sampleDoc()
	d3.Region = "us"
	if err := r.Publish(d3); err != nil {
		t.Fatal(err)
	}
	if got := r.Discover("photo-edit")[0].Region; got != "us" {
		t.Errorf("re-publish did not replace: region = %q", got)
	}
	if r.Len() != 2 {
		t.Errorf("Len after replace = %d", r.Len())
	}
}

func TestRegistryUnpublish(t *testing.T) {
	r := NewRegistry()
	if err := r.Publish(sampleDoc()); err != nil {
		t.Fatal(err)
	}
	if err := r.Unpublish("photo-edit", "acme"); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 || len(r.Services()) != 0 {
		t.Error("unpublish did not remove")
	}
	if err := r.Unpublish("photo-edit", "acme"); err == nil {
		t.Error("double unpublish should fail")
	}
	if err := r.Unpublish("nope", "acme"); err == nil {
		t.Error("unknown service should fail")
	}
}

func TestRegistryPublishInvalid(t *testing.T) {
	r := NewRegistry()
	bad := sampleDoc()
	bad.Service = ""
	if err := r.Publish(bad); err == nil {
		t.Error("invalid doc should not publish")
	}
}

func TestRegistryDiscoverReturnsCopies(t *testing.T) {
	r := NewRegistry()
	if err := r.Publish(sampleDoc()); err != nil {
		t.Fatal(err)
	}
	docs := r.Discover("photo-edit")
	docs[0].Attributes[0].Base = 0
	docs[0].Provider = "mutated"
	again := r.Discover("photo-edit")
	if again[0].Attributes[0].Base != 80 || again[0].Provider != "acme" {
		t.Error("Discover must return copies, not shared state")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := sampleDoc()
			d.Provider = string(rune('a' + i))
			for j := 0; j < 50; j++ {
				if err := r.Publish(d); err != nil {
					t.Error(err)
					return
				}
				r.Discover("photo-edit")
				r.Services()
				r.Len()
			}
		}(i)
	}
	wg.Wait()
	if r.Len() != 8 {
		t.Errorf("Len = %d, want 8", r.Len())
	}
}

func TestSLAXMLRoundTrip(t *testing.T) {
	sla := &SLA{
		Service:     "photo-edit",
		Client:      "shop",
		Providers:   []string{"acme"},
		Metric:      MetricCost,
		AgreedLevel: 12.5,
		Resources:   []ResourceBinding{{Name: "processors", Units: 2}},
	}
	data, err := sla.Render()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSLA(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.AgreedLevel != 12.5 || len(back.Providers) != 1 || back.Resources[0].Units != 2 {
		t.Errorf("roundtrip mismatch: %+v", back)
	}
	if _, err := ParseSLA([]byte("not xml")); err == nil {
		t.Error("expected parse error")
	}
}

func TestRegistryCopiesCapabilities(t *testing.T) {
	r := NewRegistry()
	d := sampleDoc()
	d.Capabilities = []string{"http-auth", "gzip"}
	if err := r.Publish(d); err != nil {
		t.Fatal(err)
	}
	d.Capabilities[0] = "mutated"
	got := r.Discover("photo-edit")[0]
	if got.Capabilities[0] != "http-auth" {
		t.Error("Publish must copy capabilities")
	}
	got.Capabilities[1] = "mutated"
	if r.Discover("photo-edit")[0].Capabilities[1] != "gzip" {
		t.Error("Discover must copy capabilities")
	}
}

func TestRegistryPersistence(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/registry.xml"
	r := NewRegistry()
	d1 := sampleDoc()
	d1.Capabilities = []string{"gzip"}
	d2 := sampleDoc()
	d2.Provider = "other"
	d2.Service = "print"
	if err := r.Publish(d1); err != nil {
		t.Fatal(err)
	}
	if err := r.Publish(d2); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	restored := NewRegistry()
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 2 {
		t.Fatalf("restored %d registrations, want 2", restored.Len())
	}
	got := restored.Discover("photo-edit")
	if len(got) != 1 || got[0].Provider != "acme" {
		t.Fatalf("restored docs = %+v", got)
	}
	if len(got[0].Capabilities) != 1 || got[0].Capabilities[0] != "gzip" {
		t.Errorf("capabilities lost: %+v", got[0].Capabilities)
	}
	if len(got[0].Attributes) != 2 {
		t.Errorf("attributes lost: %+v", got[0].Attributes)
	}
}

func TestRegistryLoadErrors(t *testing.T) {
	r := NewRegistry()
	if err := r.LoadFile("/nonexistent/registry.xml"); err == nil {
		t.Error("missing file should fail")
	}
	dir := t.TempDir()
	bad := dir + "/bad.xml"
	if err := os.WriteFile(bad, []byte("<registry><qos/></registry>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadFile(bad); err == nil {
		t.Error("invalid document should fail validation on load")
	}
	notXML := dir + "/garbage.xml"
	if err := os.WriteFile(notXML, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadFile(notXML); err == nil {
		t.Error("garbage should fail to decode")
	}
}

func TestRegistrySaveToBadPath(t *testing.T) {
	r := NewRegistry()
	if err := r.SaveFile("/nonexistent-dir/registry.xml"); err == nil {
		t.Error("unwritable path should fail")
	}
}

func TestDowntimeMetric(t *testing.T) {
	if !MetricDowntime.Valid() {
		t.Fatal("downtime must be a valid metric")
	}
	sr, err := SemiringFor(MetricDowntime)
	if err != nil {
		t.Fatal(err)
	}
	// Downtime accumulates: combining 2h and 3h of expected downtime
	// gives 5h, and less downtime is better.
	if got := sr.Times(2, 3); got != 5 {
		t.Errorf("combined downtime = %v, want 5", got)
	}
	if !sr.Leq(5, 2) {
		t.Error("2h downtime must be better than 5h")
	}
	s := core.NewSpace[float64](sr)
	x := s.AddVariable("redundancy", core.IntDomain(0, 3))
	attr := Attribute{
		Name: "downtime", Metric: MetricDowntime,
		Base: 8, PerUnit: -2, Resource: "redundancy", MaxUnits: 3,
	}
	c, err := attr.ToConstraint(s, x)
	if err != nil {
		t.Fatal(err)
	}
	// 8h baseline minus 2h per redundant replica, floored at 0.
	if got := c.AtLabels("0"); got != 8 {
		t.Errorf("downtime(0) = %v", got)
	}
	if got := c.AtLabels("3"); got != 2 {
		t.Errorf("downtime(3) = %v", got)
	}
	if got := core.Blevel(c); got != 2 {
		t.Errorf("best downtime = %v", got)
	}
}
