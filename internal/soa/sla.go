package soa

import (
	"encoding/xml"
	"fmt"
)

// SLA is a Service Level Agreement: the formal outcome of a
// successful QoS negotiation (step 5 of the paper's broker protocol),
// "retranslated into an XML-based answer in order to be signed by all
// the interested parties".
type SLA struct {
	XMLName xml.Name `xml:"sla"`
	// ID identifies the agreement at the broker; renegotiation and
	// retrieval address it. Empty for compositions and local use.
	ID string `xml:"id,attr,omitempty"`
	// Service is the negotiated abstract service.
	Service string `xml:"service,attr"`
	// Client identifies the requesting party.
	Client string `xml:"client,attr"`
	// Providers lists the providers bound by the agreement (one for a
	// simple negotiation, one per stage for a composition).
	Providers []string `xml:"provider"`
	// Metric is the negotiated QoS metric.
	Metric Metric `xml:"metric,attr"`
	// AgreedLevel is the consistency level of the final store — the
	// level of service formally agreed.
	AgreedLevel float64 `xml:"agreedLevel,attr"`
	// Version counts renegotiations (1 = the initial agreement).
	Version int `xml:"version,attr,omitempty"`
	// Resources records the agreed resource allocation: variable name
	// to chosen units.
	Resources []ResourceBinding `xml:"resource"`
}

// ResourceBinding records one agreed resource value.
type ResourceBinding struct {
	Name  string `xml:"name,attr"`
	Units int    `xml:"units,attr"`
}

// Render encodes the SLA as XML.
func (s *SLA) Render() ([]byte, error) {
	out, err := xml.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("soa: encode SLA: %w", err)
	}
	return out, nil
}

// ParseSLA decodes an SLA from XML.
func ParseSLA(data []byte) (*SLA, error) {
	var s SLA
	if err := xml.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("soa: decode SLA: %w", err)
	}
	return &s, nil
}
