package replay

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"softsoa/internal/obs/journal"
)

// goldens maps each golden journal under testdata/journals to the
// paper scenario it captures and the expected final state.
var goldens = []struct {
	name        string
	finalBlevel string
	status      string
	events      int
}{
	// Fig. 7 Example 1: merged store at blevel 5 blocks both [4,1]
	// checked asks — the negotiation sticks.
	{"example1", "5", "stuck", 4},
	// Fig. 7 Example 2: offer x+2 and requirement x meet at 2x+2,
	// blevel 2, and the checked ask fires.
	{"example2", "2", "succeeded", 7},
	// Fig. 7 Example 3: update{x}(4) retracts the x-constraints and
	// leaves y+4 at blevel 4.
	{"example3", "4", "succeeded", 2},
	// Fig. 5: intersecting fuzzy preferences agree at 0.5.
	{"fuzzy-agreement", "0.5", "succeeded", 2},
}

func goldenPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("..", "..", "testdata", "journals", name+".jsonl")
}

// TestGoldenJournalsVerify replays every golden journal and requires
// exact rule-by-rule agreement plus the paper's final blevel.
func TestGoldenJournalsVerify(t *testing.T) {
	for _, g := range goldens {
		t.Run(g.name, func(t *testing.T) {
			f, err := os.Open(goldenPath(t, g.name))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			j, err := journal.ReadJSONL(f)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Verify(j)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Segments) != 1 {
				t.Fatalf("golden has %d segments, want 1", len(rep.Segments))
			}
			sr := rep.Segments[0]
			if !sr.Replayable {
				t.Fatal("golden segment is not replayable")
			}
			for _, m := range sr.Mismatches {
				t.Errorf("mismatch: %s", m)
			}
			if sr.Events != g.events {
				t.Errorf("replayed %d transitions, want %d", sr.Events, g.events)
			}
			seg := j.Segments()[0]
			if seg.FinalBlevel != g.finalBlevel {
				t.Errorf("final blevel %q, want %q", seg.FinalBlevel, g.finalBlevel)
			}
			if seg.Status != g.status {
				t.Errorf("status %q, want %q", seg.Status, g.status)
			}
		})
	}
}

// TestGoldenJournalsByteStable re-records each golden's own program
// with its recorded seed, fuel and capacity and requires the JSONL
// output to match the checked-in fixture byte for byte. Any change to
// the engine, the recorder or the wire format that alters the bytes
// must regenerate the fixtures deliberately:
//
//	go run ./cmd/softsoa-replay -record testdata/<name>.sccp \
//	    -o testdata/journals/<name>.jsonl -id <name> -label <name>
func TestGoldenJournalsByteStable(t *testing.T) {
	for _, g := range goldens {
		t.Run(g.name, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(t, g.name))
			if err != nil {
				t.Fatal(err)
			}
			j, err := journal.ReadJSONL(bytes.NewReader(want))
			if err != nil {
				t.Fatal(err)
			}
			seg := j.Segments()[0]
			run, err := Record(j.Meta(), seg.Label, seg.Program, seg.Seed, seg.Fuel, j.Capacity())
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := run.Journal.WriteJSONL(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("re-recording %s does not reproduce the golden bytes\ngot:  %d bytes\nwant: %d bytes", g.name, got.Len(), len(want))
			}
		})
	}
}

// TestVerifyDetectsDrift corrupts a recorded rule and final blevel and
// requires Verify to flag both.
func TestVerifyDetectsDrift(t *testing.T) {
	data, err := os.ReadFile(goldenPath(t, "example3"))
	if err != nil {
		t.Fatal(err)
	}
	j, err := journal.ReadJSONL(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	evs := j.Events()
	evs[0].Transition.Rule = "R2 Ask"
	rep, err := Verify(j)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("Verify accepted a corrupted recording")
	}
}
