// Package replay turns flight-recorder journals into evidence: it
// records nmsccp programs into journals (the write side behind
// cmd/softsoa-replay -record and the golden fixtures) and verifies
// existing journals by deterministically re-executing each segment's
// program — same source, same seed, same fuel — and comparing the
// resulting transitions rule by rule, then the final store and
// blevel. A journal captured from a live broker negotiation thereby
// becomes a regression test: if the engine's semantics drift, the
// replay disagrees.
package replay

import (
	"fmt"

	"softsoa/internal/obs/journal"
	"softsoa/internal/sccp"
)

// Run is one recorded program execution.
type Run struct {
	// Journal holds the captured events.
	Journal *journal.Journal
	// Status is the machine's final status.
	Status sccp.Status
	// Machine is the machine after the run (final store, trace).
	Machine *sccp.Machine[float64]
}

// Record parses, compiles and executes src with the given scheduler
// seed and fuel, capturing every transition into a fresh journal of
// the given event capacity (< 1 selects journal.DefaultCapacity).
// Journals contain no timestamps, so recording the same program twice
// yields byte-identical WriteJSONL output.
func Record(meta journal.Meta, label, src string, seed int64, fuel, capacity int) (*Run, error) {
	c, err := sccp.ParseAndCompile(src)
	if err != nil {
		return nil, err
	}
	j := journal.New(capacity, meta)
	j.SetSemiring(c.Semiring.Name())
	j.BeginSegment(journal.Segment{Label: label, Program: src, Seed: seed, Fuel: fuel})
	m := c.NewMachine(sccp.WithSeed[float64](seed), sccp.WithRecorder[float64](j))
	status, err := m.Run(fuel)
	if err != nil {
		return nil, err
	}
	sr := c.Semiring
	j.EndSegment(status.String(), m.Store().Constraint().String(), sr.Format(m.Store().Blevel()))
	return &Run{Journal: j, Status: status, Machine: m}, nil
}

// SegmentResult is the verification outcome for one segment.
type SegmentResult struct {
	// Label is the segment's label.
	Label string
	// Replayable reports whether the segment carried a program to
	// re-execute (prechecked or skipped segments do not).
	Replayable bool
	// Events is the number of recorded transitions compared.
	Events int
	// Mismatches lists human-readable disagreements between the
	// recording and the replay; empty means exact agreement.
	Mismatches []string
}

// OK reports whether the segment verified (or was not replayable).
func (s SegmentResult) OK() bool { return len(s.Mismatches) == 0 }

// Report is the verification outcome for a whole journal.
type Report struct {
	Meta     journal.Meta
	Segments []SegmentResult
	// Dropped is the journal's drop count; a journal that lost events
	// can no longer be fully verified.
	Dropped int64
}

// OK reports whether every segment verified.
func (r *Report) OK() bool {
	for _, s := range r.Segments {
		if !s.OK() {
			return false
		}
	}
	return true
}

// collector captures replayed transitions for comparison.
type collector struct {
	recs []journal.TransitionRecord
}

func (c *collector) RecordTransition(r journal.TransitionRecord) {
	c.recs = append(c.recs, r)
}

// Verify re-executes every replayable segment of the journal and
// compares the replayed transitions, final store and final blevel
// against the recording. The error return is reserved for journals
// that cannot be processed at all (no segments); semantic
// disagreements land in the report's mismatches.
func Verify(j *journal.Journal) (*Report, error) {
	segments := j.Segments()
	if len(segments) == 0 {
		return nil, fmt.Errorf("replay: journal has no segments")
	}
	events := j.Events()
	rep := &Report{Meta: j.Meta(), Dropped: j.Dropped()}
	for i, seg := range segments {
		var recorded []journal.TransitionRecord
		for _, ev := range events {
			if ev.Seg == i && ev.Kind == "transition" && ev.Transition != nil {
				recorded = append(recorded, *ev.Transition)
			}
		}
		rep.Segments = append(rep.Segments, verifySegment(seg, recorded))
	}
	return rep, nil
}

func verifySegment(seg journal.Segment, recorded []journal.TransitionRecord) SegmentResult {
	res := SegmentResult{Label: seg.Label, Events: len(recorded)}
	if seg.Program == "" {
		return res
	}
	res.Replayable = true
	mismatch := func(format string, args ...any) {
		res.Mismatches = append(res.Mismatches, fmt.Sprintf(format, args...))
	}
	// Each live machine numbers its transitions from 1; a recording
	// whose first retained step is later lost its prefix to the ring
	// and can no longer be verified positionally.
	if len(recorded) > 0 && recorded[0].Step != 1 {
		mismatch("recording starts at step %d: earlier events were dropped", recorded[0].Step)
		return res
	}

	c, err := sccp.ParseAndCompile(seg.Program)
	if err != nil {
		mismatch("program does not compile: %v", err)
		return res
	}
	col := &collector{}
	m := c.NewMachine(sccp.WithSeed[float64](seg.Seed), sccp.WithRecorder[float64](col))
	fuel := seg.Fuel
	if fuel <= 0 {
		fuel = 10000
	}
	status, err := m.Run(fuel)
	if err != nil {
		mismatch("replay run failed: %v", err)
		return res
	}
	// Skip the setup prefix that reconstructs pre-existing store state
	// (renegotiation segments replay onto a store built earlier).
	if len(col.recs) < seg.Setup {
		mismatch("replay produced %d transitions, fewer than the %d setup transitions", len(col.recs), seg.Setup)
		return res
	}
	replayed := col.recs[seg.Setup:]
	if len(replayed) != len(recorded) {
		mismatch("replay produced %d transitions, recording has %d", len(replayed), len(recorded))
	}
	n := min(len(replayed), len(recorded))
	for k := 0; k < n; k++ {
		want, got := recorded[k], replayed[k]
		// The live machine numbered from 1 without the setup prefix.
		if got.Step != want.Step+seg.Setup {
			mismatch("step %d: replay step %d (setup %d)", want.Step, got.Step, seg.Setup)
		}
		if got.Rule != want.Rule {
			mismatch("step %d: rule %q, recording has %q", want.Step, got.Rule, want.Rule)
		}
		if got.Agent != want.Agent {
			mismatch("step %d: agent %q, recording has %q", want.Step, got.Agent, want.Agent)
		}
		if got.Delta != want.Delta {
			mismatch("step %d: delta %q, recording has %q", want.Step, got.Delta, want.Delta)
		}
		if got.Check != want.Check {
			mismatch("step %d: check %q, recording has %q", want.Step, got.Check, want.Check)
		}
		if got.BlevelAfter != want.BlevelAfter {
			mismatch("step %d: blevel %s, recording has %s", want.Step, got.BlevelAfter, want.BlevelAfter)
		}
		if k > 0 && got.BlevelBefore != want.BlevelBefore {
			mismatch("step %d: blevel-before %s, recording has %s", want.Step, got.BlevelBefore, want.BlevelBefore)
		}
		if got.Consistent != want.Consistent {
			mismatch("step %d: consistent=%v, recording has %v", want.Step, got.Consistent, want.Consistent)
		}
		if got.Cut != want.Cut {
			mismatch("step %d: cut=%v, recording has %v", want.Step, got.Cut, want.Cut)
		}
	}
	if seg.Status != "" && status.String() != seg.Status {
		mismatch("final status %q, recording has %q", status.String(), seg.Status)
	}
	if seg.FinalStore != "" {
		if got := m.Store().Constraint().String(); got != seg.FinalStore {
			mismatch("final store %s, recording has %s", got, seg.FinalStore)
		}
	}
	if seg.FinalBlevel != "" {
		if got := c.Semiring.Format(m.Store().Blevel()); got != seg.FinalBlevel {
			mismatch("final blevel %s, recording has %s", got, seg.FinalBlevel)
		}
	}
	return res
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
