package semiring

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Weighted is the weighted semiring ⟨ℝ⁺∪{+∞}, min, +, +∞, 0⟩ of the
// paper (Sec. 4). Values are costs to be minimised: hours, euros,
// downtime. The induced order is the reverse of the numeric order —
// smaller costs are better — so Leq(a, b) holds when b ≤ a
// numerically.
type Weighted struct{}

var (
	_ Semiring[float64]    = Weighted{}
	_ ValueParser[float64] = Weighted{}
)

// Name implements Semiring.
func (Weighted) Name() string { return "weighted" }

// Zero returns +∞, the totally unacceptable (infinite) cost.
func (Weighted) Zero() float64 { return math.Inf(1) }

// One returns 0, the perfect (free) cost.
func (Weighted) One() float64 { return 0 }

// Plus returns min(a, b): the better (cheaper) of two costs.
func (Weighted) Plus(a, b float64) float64 { return math.Min(a, b) }

// Times returns a + b: costs accumulate.
func (Weighted) Times(a, b float64) float64 {
	// +∞ must absorb even against a hypothetical -∞; plain addition
	// already yields +∞ for +∞ + finite.
	return a + b
}

// Div returns the residual max{x : b + x ≥ a} in the cost order,
// which is the truncated difference max(a-b, 0), with ∞ ÷ finite = ∞
// and a ÷ ∞ = 0 (the One of the semiring).
func (w Weighted) Div(a, b float64) float64 {
	switch {
	case math.IsInf(b, 1):
		// Any x satisfies ∞ + x ≤ a in the semiring order is false
		// unless a = ∞; the residual set is {x : ∞ ≤num a+...}; by the
		// residuation definition the set {x : b×x ≤S a} is all of A
		// when b = 0S, so its maximum is 1S = 0.
		return w.One()
	case math.IsInf(a, 1):
		return w.Zero()
	case a > b:
		return a - b
	default:
		return 0
	}
}

// Eq implements Semiring.
func (Weighted) Eq(a, b float64) bool { return a == b }

// Leq reports a ≤S b, i.e. b is a smaller-or-equal cost.
func (Weighted) Leq(a, b float64) bool { return b <= a }

// Format implements Semiring.
func (Weighted) Format(v float64) string { return formatFloat(v) }

// ParseValue implements ValueParser. "inf" and "zero" parse to +∞.
func (w Weighted) ParseValue(text string) (float64, error) {
	switch strings.ToLower(strings.TrimSpace(text)) {
	case "inf", "+inf", "infinity", "zero", "bot":
		return w.Zero(), nil
	case "one", "top":
		return w.One(), nil
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
	if err != nil {
		return 0, fmt.Errorf("weighted: parse %q: %w", text, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("weighted: value %v outside [0, +inf]", v)
	}
	return v, nil
}

// BoundedWeighted is the saturating variant ⟨[0,K], min, +ₖ, K, 0⟩
// where a +ₖ b = min(a+b, K). It models budgets with a hard cap: any
// cost at or above K is equally unacceptable. It remains an
// absorptive semiring because + distributes over min and K absorbs.
type BoundedWeighted struct {
	// Bound is the saturation cap K. The zero value of the struct is
	// not usable; construct with NewBoundedWeighted.
	Bound float64
}

// NewBoundedWeighted returns the saturating weighted semiring with cap
// bound. It panics if bound is not a positive finite number, since a
// semiring with an empty or degenerate carrier is meaningless.
func NewBoundedWeighted(bound float64) BoundedWeighted {
	if !(bound > 0) || math.IsInf(bound, 1) {
		panic(fmt.Sprintf("semiring: invalid BoundedWeighted bound %v", bound))
	}
	return BoundedWeighted{Bound: bound}
}

var (
	_ Semiring[float64]    = BoundedWeighted{}
	_ ValueParser[float64] = BoundedWeighted{}
)

// Name implements Semiring.
func (s BoundedWeighted) Name() string {
	return fmt.Sprintf("weighted[0,%s]", formatFloat(s.Bound))
}

// Zero returns the cap K.
func (s BoundedWeighted) Zero() float64 { return s.Bound }

// One returns 0.
func (BoundedWeighted) One() float64 { return 0 }

// Plus returns min(a, b).
func (BoundedWeighted) Plus(a, b float64) float64 { return math.Min(a, b) }

// Times returns min(a+b, K).
func (s BoundedWeighted) Times(a, b float64) float64 { return math.Min(a+b, s.Bound) }

// Div returns the truncated difference max(a-b, 0): the semiring-
// maximal (numerically minimal) x with min(b+x, K) ≥ a.
func (s BoundedWeighted) Div(a, b float64) float64 {
	if a > b {
		return math.Min(a-b, s.Bound)
	}
	return 0
}

// Eq implements Semiring.
func (BoundedWeighted) Eq(a, b float64) bool { return a == b }

// Leq reports a ≤S b (b is a smaller cost).
func (BoundedWeighted) Leq(a, b float64) bool { return b <= a }

// Format implements Semiring.
func (BoundedWeighted) Format(v float64) string { return formatFloat(v) }

// ParseValue implements ValueParser, clamping to [0, K].
func (s BoundedWeighted) ParseValue(text string) (float64, error) {
	v, err := Weighted{}.ParseValue(text)
	if err != nil {
		return 0, err
	}
	return math.Min(v, s.Bound), nil
}

// Fuzzy is the fuzzy semiring ⟨[0,1], max, min, 0, 1⟩ (Sec. 4). It
// models concave metrics where a composition is only as good as its
// worst component: qualitative reliability levels, preference grades.
type Fuzzy struct{}

var (
	_ Semiring[float64]    = Fuzzy{}
	_ ValueParser[float64] = Fuzzy{}
)

// Name implements Semiring.
func (Fuzzy) Name() string { return "fuzzy" }

// Zero implements Semiring.
func (Fuzzy) Zero() float64 { return 0 }

// One implements Semiring.
func (Fuzzy) One() float64 { return 1 }

// Plus returns max(a, b).
func (Fuzzy) Plus(a, b float64) float64 { return math.Max(a, b) }

// Times returns min(a, b).
func (Fuzzy) Times(a, b float64) float64 { return math.Min(a, b) }

// Div returns 1 when b ≤ a (dividing out something no better than a
// imposes no limit) and a otherwise.
func (Fuzzy) Div(a, b float64) float64 {
	if b <= a {
		return 1
	}
	return a
}

// Eq implements Semiring.
func (Fuzzy) Eq(a, b float64) bool { return a == b }

// Leq is the numeric order: higher preference is better.
func (Fuzzy) Leq(a, b float64) bool { return a <= b }

// Format implements Semiring.
func (Fuzzy) Format(v float64) string { return formatFloat(v) }

// ParseValue implements ValueParser, requiring values in [0,1].
func (Fuzzy) ParseValue(text string) (float64, error) {
	return parseUnit("fuzzy", text)
}

// Probabilistic is the probabilistic semiring ⟨[0,1], max, ×, 0, 1⟩
// (Sec. 4). It models multiplicative metrics: the probability that a
// composed service behaves correctly is the product of its
// components' success probabilities, and the best composition
// maximises that product.
type Probabilistic struct{}

var (
	_ Semiring[float64]    = Probabilistic{}
	_ ValueParser[float64] = Probabilistic{}
)

// Name implements Semiring.
func (Probabilistic) Name() string { return "probabilistic" }

// Zero implements Semiring.
func (Probabilistic) Zero() float64 { return 0 }

// One implements Semiring.
func (Probabilistic) One() float64 { return 1 }

// Plus returns max(a, b).
func (Probabilistic) Plus(a, b float64) float64 { return math.Max(a, b) }

// Times returns a × b.
func (Probabilistic) Times(a, b float64) float64 { return a * b }

// Div returns min(1, a/b), with a ÷ 0 = 1 (the residual set is the
// whole carrier when b = 0).
func (Probabilistic) Div(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return math.Min(1, a/b)
}

// Eq implements Semiring.
func (Probabilistic) Eq(a, b float64) bool { return a == b }

// Leq is the numeric order: higher probability is better.
func (Probabilistic) Leq(a, b float64) bool { return a <= b }

// Format implements Semiring.
func (Probabilistic) Format(v float64) string { return formatFloat(v) }

// ParseValue implements ValueParser, requiring values in [0,1].
func (Probabilistic) ParseValue(text string) (float64, error) {
	return parseUnit("probabilistic", text)
}

// Classical is the boolean semiring ⟨{false,true}, ∨, ∧, false, true⟩
// used to cast crisp constraints into the soft framework (Sec. 4):
// integrity policies, feature entailment, hard feasibility checks.
type Classical struct{}

var (
	_ Semiring[bool]    = Classical{}
	_ ValueParser[bool] = Classical{}
)

// Name implements Semiring.
func (Classical) Name() string { return "classical" }

// Zero implements Semiring.
func (Classical) Zero() bool { return false }

// One implements Semiring.
func (Classical) One() bool { return true }

// Plus returns a ∨ b.
func (Classical) Plus(a, b bool) bool { return a || b }

// Times returns a ∧ b.
func (Classical) Times(a, b bool) bool { return a && b }

// Div returns a ∨ ¬b, the maximal x with b ∧ x → a.
func (Classical) Div(a, b bool) bool { return a || !b }

// Eq implements Semiring.
func (Classical) Eq(a, b bool) bool { return a == b }

// Leq is logical implication: false ≤ true.
func (Classical) Leq(a, b bool) bool { return !a || b }

// Format implements Semiring.
func (Classical) Format(v bool) string {
	if v {
		return "true"
	}
	return "false"
}

// ParseValue implements ValueParser.
func (Classical) ParseValue(text string) (bool, error) {
	switch strings.ToLower(strings.TrimSpace(text)) {
	case "true", "t", "1", "one", "top":
		return true, nil
	case "false", "f", "0", "zero", "bot":
		return false, nil
	}
	return false, fmt.Errorf("classical: parse %q: not a boolean", text)
}

func parseUnit(name, text string) (float64, error) {
	switch strings.ToLower(strings.TrimSpace(text)) {
	case "zero", "bot":
		return 0, nil
	case "one", "top":
		return 1, nil
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
	if err != nil {
		return 0, fmt.Errorf("%s: parse %q: %w", name, text, err)
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("%s: value %v outside [0,1]", name, v)
	}
	return v, nil
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
