package semiring_test

import (
	"fmt"

	"softsoa/internal/semiring"
)

// The weighted semiring models additive costs: combination adds,
// optimisation takes the minimum, and division (the residual)
// subtracts — the engine behind the paper's retract.
func ExampleWeighted() {
	w := semiring.Weighted{}
	merged := w.Times(5, 2)               // combine two policies
	fmt.Println("combined cost:", merged) // 7
	fmt.Println("best of 7, 3:", w.Plus(7, 3))
	fmt.Println("retract 2:", w.Div(merged, 2))
	fmt.Println("2 better than 7:", w.Leq(7, 2))
	// Output:
	// combined cost: 7
	// best of 7, 3: 3
	// retract 2: 5
	// 2 better than 7: true
}

// The fuzzy semiring models preference levels: a composition is only
// as acceptable as its worst component.
func ExampleFuzzy() {
	f := semiring.Fuzzy{}
	fmt.Println(f.Times(0.9, 0.4)) // min
	fmt.Println(f.Plus(0.9, 0.4))  // max
	// Output:
	// 0.4
	// 0.9
}

// Cartesian products give multi-criteria optimisation: pairs combine
// componentwise and the order is the Pareto order, under which some
// values are incomparable.
func ExampleProduct() {
	sr := semiring.NewProduct[float64, float64](semiring.Weighted{}, semiring.Probabilistic{})
	cheapFlaky := semiring.P(2.0, 0.8)
	dearSolid := semiring.P(8.0, 0.99)
	fmt.Println("comparable:", semiring.Comparable(sr, cheapFlaky, dearSolid))
	combined := sr.Times(cheapFlaky, dearSolid)
	fmt.Println("combined:", sr.Format(combined))
	// Output:
	// comparable: false
	// combined: ⟨10,0.792⟩
}

// The set-based semiring models capabilities: combination intersects
// (a composition guarantees only what every component offers) and the
// order is inclusion.
func ExampleSet() {
	s := semiring.NewSet("http-auth", "gzip", "tls13")
	a := s.MustValue("http-auth", "gzip")
	b := s.MustValue("http-auth", "tls13")
	fmt.Println(s.Format(s.Times(a, b)))
	fmt.Println(s.Leq(s.MustValue("http-auth"), a))
	// Output:
	// {http-auth}
	// true
}
