package semiring

// Reporter is the subset of *testing.T used by the law checkers, so
// that property tests in any package can validate a semiring instance
// without this package importing testing.
type Reporter interface {
	Helper()
	Errorf(format string, args ...any)
}

// CheckLaws verifies every absorptive-c-semiring axiom on all
// combinations drawn from samples: commutativity, associativity and
// idempotence of +, its unit 0 and absorbing element 1; commutativity
// and associativity of ×, its unit 1 and absorbing element 0;
// distributivity of × over +; monotonicity of both operations; and
// the lattice characterisation of Plus as least upper bound. Samples
// should include Zero and One; CheckLaws adds them if absent.
func CheckLaws[T any](t Reporter, s Semiring[T], samples []T) {
	t.Helper()
	vs := withBounds(s, samples)

	zero, one := s.Zero(), s.One()
	for _, a := range vs {
		if !s.Eq(s.Plus(a, zero), a) {
			t.Errorf("%s: 0 not unit of +: %s + 0 = %s", s.Name(), s.Format(a), s.Format(s.Plus(a, zero)))
		}
		if !s.Eq(s.Plus(a, one), one) {
			t.Errorf("%s: 1 not absorbing for +: %s + 1 = %s", s.Name(), s.Format(a), s.Format(s.Plus(a, one)))
		}
		if !s.Eq(s.Times(a, one), a) {
			t.Errorf("%s: 1 not unit of ×: %s × 1 = %s", s.Name(), s.Format(a), s.Format(s.Times(a, one)))
		}
		if !s.Eq(s.Times(a, zero), zero) {
			t.Errorf("%s: 0 not absorbing for ×: %s × 0 = %s", s.Name(), s.Format(a), s.Format(s.Times(a, zero)))
		}
		if !s.Eq(s.Plus(a, a), a) {
			t.Errorf("%s: + not idempotent at %s", s.Name(), s.Format(a))
		}
		if !s.Leq(zero, a) || !s.Leq(a, one) {
			t.Errorf("%s: %s not between 0 and 1 in the order", s.Name(), s.Format(a))
		}
	}

	for _, a := range vs {
		for _, b := range vs {
			if !s.Eq(s.Plus(a, b), s.Plus(b, a)) {
				t.Errorf("%s: + not commutative on (%s,%s)", s.Name(), s.Format(a), s.Format(b))
			}
			if !s.Eq(s.Times(a, b), s.Times(b, a)) {
				t.Errorf("%s: × not commutative on (%s,%s)", s.Name(), s.Format(a), s.Format(b))
			}
			// Plus is the lub: a ≤ a+b, b ≤ a+b, and a+b is below any
			// common upper bound (checked in the triple loop).
			if !s.Leq(a, s.Plus(a, b)) || !s.Leq(b, s.Plus(a, b)) {
				t.Errorf("%s: a+b not an upper bound of (%s,%s)", s.Name(), s.Format(a), s.Format(b))
			}
			// × is intensive: combining can only worsen.
			if !s.Leq(s.Times(a, b), a) {
				t.Errorf("%s: × not intensive: %s × %s = %s ≰ %s",
					s.Name(), s.Format(a), s.Format(b), s.Format(s.Times(a, b)), s.Format(a))
			}
			// Order characterisation: a ≤ b ⇔ a+b = b.
			if s.Leq(a, b) != s.Eq(s.Plus(a, b), b) {
				t.Errorf("%s: Leq(%s,%s) inconsistent with a+b=b", s.Name(), s.Format(a), s.Format(b))
			}
		}
	}

	for _, a := range vs {
		for _, b := range vs {
			for _, c := range vs {
				if !s.Eq(s.Plus(s.Plus(a, b), c), s.Plus(a, s.Plus(b, c))) {
					t.Errorf("%s: + not associative on (%s,%s,%s)", s.Name(), s.Format(a), s.Format(b), s.Format(c))
				}
				if !s.Eq(s.Times(s.Times(a, b), c), s.Times(a, s.Times(b, c))) {
					t.Errorf("%s: × not associative on (%s,%s,%s)", s.Name(), s.Format(a), s.Format(b), s.Format(c))
				}
				if !s.Eq(s.Times(a, s.Plus(b, c)), s.Plus(s.Times(a, b), s.Times(a, c))) {
					t.Errorf("%s: × does not distribute over + on (%s,%s,%s)",
						s.Name(), s.Format(a), s.Format(b), s.Format(c))
				}
				// Monotonicity: b ≤ c ⇒ a+b ≤ a+c and a×b ≤ a×c.
				if s.Leq(b, c) {
					if !s.Leq(s.Plus(a, b), s.Plus(a, c)) {
						t.Errorf("%s: + not monotone on (%s,%s,%s)", s.Name(), s.Format(a), s.Format(b), s.Format(c))
					}
					if !s.Leq(s.Times(a, b), s.Times(a, c)) {
						t.Errorf("%s: × not monotone on (%s,%s,%s)", s.Name(), s.Format(a), s.Format(b), s.Format(c))
					}
				}
				// lub minimality: if a ≤ c and b ≤ c then a+b ≤ c.
				if s.Leq(a, c) && s.Leq(b, c) && !s.Leq(s.Plus(a, b), c) {
					t.Errorf("%s: a+b not least upper bound on (%s,%s,%s)",
						s.Name(), s.Format(a), s.Format(b), s.Format(c))
				}
			}
		}
	}
}

// CheckResiduation verifies that Div is the residual of Times on all
// pairs from samples: (i) b × (a ÷ b) ≤ a, and (ii) for every sample
// x, b × x ≤ a implies x ≤ a ÷ b (maximality, checked against the
// sample set). For invertible pairs (b ≥ a) it additionally checks
// b × (a ÷ b) = a on totally ordered instances where the paper's
// invertibility property holds.
func CheckResiduation[T any](t Reporter, s Semiring[T], samples []T, invertible bool) {
	t.Helper()
	vs := withBounds(s, samples)
	for _, a := range vs {
		for _, b := range vs {
			d := s.Div(a, b)
			if !s.Leq(s.Times(b, d), a) {
				t.Errorf("%s: residual unsound: %s × (%s ÷ %s = %s) = %s ≰ %s",
					s.Name(), s.Format(b), s.Format(a), s.Format(b), s.Format(d),
					s.Format(s.Times(b, d)), s.Format(a))
			}
			for _, x := range vs {
				if s.Leq(s.Times(b, x), a) && !s.Leq(x, d) {
					t.Errorf("%s: residual not maximal: %s × %s ≤ %s but %s ≰ %s ÷ %s = %s",
						s.Name(), s.Format(b), s.Format(x), s.Format(a),
						s.Format(x), s.Format(a), s.Format(b), s.Format(d))
				}
			}
			if invertible && s.Leq(a, b) {
				if !s.Eq(s.Times(b, d), a) {
					t.Errorf("%s: not invertible by residuation: %s × (%s ÷ %s) = %s, want %s",
						s.Name(), s.Format(b), s.Format(a), s.Format(b),
						s.Format(s.Times(b, d)), s.Format(a))
				}
			}
		}
	}
}

// CheckAbsorption verifies the lattice absorption law that gives
// absorptive semirings their name: a + (a × b) = a. Combining a with
// anything can only worsen it, so joining the combination back in
// changes nothing.
func CheckAbsorption[T any](t Reporter, s Semiring[T], samples []T) {
	t.Helper()
	vs := withBounds(s, samples)
	for _, a := range vs {
		for _, b := range vs {
			if !s.Eq(s.Plus(a, s.Times(a, b)), a) {
				t.Errorf("%s: absorption fails: %s + (%s × %s) = %s, want %s",
					s.Name(), s.Format(a), s.Format(a), s.Format(b),
					s.Format(s.Plus(a, s.Times(a, b))), s.Format(a))
			}
		}
	}
}

// CheckTotalOrder verifies that every pair of samples is comparable
// under ⊑. Only the scalar instances are totally ordered; product
// semirings are Pareto-ordered and must not be passed here.
func CheckTotalOrder[T any](t Reporter, s Semiring[T], samples []T) {
	t.Helper()
	vs := withBounds(s, samples)
	for _, a := range vs {
		for _, b := range vs {
			if !s.Leq(a, b) && !s.Leq(b, a) {
				t.Errorf("%s: order not total: %s and %s incomparable",
					s.Name(), s.Format(a), s.Format(b))
			}
		}
	}
}

// Checker is a type-erased semiring instance under test, so that
// instances over different carrier types can share one table.
type Checker interface {
	Name() string
	Check(t Reporter)
}

// Instance bundles a semiring with its sample values and the optional
// properties it claims, so a test table can run the full law suite
// over every shipped instance uniformly.
type Instance[T any] struct {
	S          Semiring[T]
	Samples    []T
	Invertible bool // residuation restores: b × (a ÷ b) = a whenever a ⊑ b
	Total      bool // ⊑ is a total order (scalar instances, not products)
}

// Name reports the instance's semiring name.
func (i Instance[T]) Name() string { return i.S.Name() }

// Check runs every applicable law checker on the instance: the
// c-semiring axioms, absorption, residuation of Div, and (when
// claimed) totality of the induced order.
func (i Instance[T]) Check(t Reporter) {
	t.Helper()
	CheckLaws(t, i.S, i.Samples)
	CheckAbsorption(t, i.S, i.Samples)
	CheckResiduation(t, i.S, i.Samples, i.Invertible)
	if i.Total {
		CheckTotalOrder(t, i.S, i.Samples)
	}
}

func withBounds[T any](s Semiring[T], samples []T) []T {
	vs := append([]T(nil), samples...)
	hasZero, hasOne := false, false
	for _, v := range vs {
		if s.Eq(v, s.Zero()) {
			hasZero = true
		}
		if s.Eq(v, s.One()) {
			hasOne = true
		}
	}
	if !hasZero {
		vs = append(vs, s.Zero())
	}
	if !hasOne {
		vs = append(vs, s.One())
	}
	return vs
}
