package semiring

import "fmt"

// Pair is a value of a Cartesian product semiring.
type Pair[A, B any] struct {
	First  A
	Second B
}

// P is a convenience constructor for Pair literals.
func P[A, B any](a A, b B) Pair[A, B] { return Pair[A, B]{First: a, Second: b} }

// Product is the Cartesian product of two c-semirings, itself a
// c-semiring (Sec. 4: "the cartesian product of multiple c-semirings
// is still a c-semiring"). It supports multi-criteria optimisation —
// e.g. cost × reliability — under the componentwise partial order, in
// which incomparable solutions form a Pareto frontier.
type Product[A, B any] struct {
	// A and B are the component semirings. The zero value is
	// unusable; construct with NewProduct.
	A Semiring[A]
	B Semiring[B]
}

// NewProduct returns the Cartesian product of a and b. It panics on a
// nil component, since every operation would be undefined.
func NewProduct[A, B any](a Semiring[A], b Semiring[B]) Product[A, B] {
	if a == nil || b == nil {
		panic("semiring: NewProduct with nil component")
	}
	return Product[A, B]{A: a, B: b}
}

// Name implements Semiring.
func (s Product[A, B]) Name() string {
	return fmt.Sprintf("%s×%s", s.A.Name(), s.B.Name())
}

// Zero implements Semiring.
func (s Product[A, B]) Zero() Pair[A, B] { return P(s.A.Zero(), s.B.Zero()) }

// One implements Semiring.
func (s Product[A, B]) One() Pair[A, B] { return P(s.A.One(), s.B.One()) }

// Plus is componentwise.
func (s Product[A, B]) Plus(a, b Pair[A, B]) Pair[A, B] {
	return P(s.A.Plus(a.First, b.First), s.B.Plus(a.Second, b.Second))
}

// Times is componentwise.
func (s Product[A, B]) Times(a, b Pair[A, B]) Pair[A, B] {
	return P(s.A.Times(a.First, b.First), s.B.Times(a.Second, b.Second))
}

// Div is componentwise; the componentwise residual is the residual of
// the product order.
func (s Product[A, B]) Div(a, b Pair[A, B]) Pair[A, B] {
	return P(s.A.Div(a.First, b.First), s.B.Div(a.Second, b.Second))
}

// Eq is componentwise.
func (s Product[A, B]) Eq(a, b Pair[A, B]) bool {
	return s.A.Eq(a.First, b.First) && s.B.Eq(a.Second, b.Second)
}

// Leq is the componentwise (Pareto) order: a ≤ b iff both components
// are ≤. This order is partial even when the components are total.
func (s Product[A, B]) Leq(a, b Pair[A, B]) bool {
	return s.A.Leq(a.First, b.First) && s.B.Leq(a.Second, b.Second)
}

// Format implements Semiring.
func (s Product[A, B]) Format(v Pair[A, B]) string {
	return fmt.Sprintf("⟨%s,%s⟩", s.A.Format(v.First), s.B.Format(v.Second))
}

var _ Semiring[Pair[float64, bool]] = Product[float64, bool]{A: Weighted{}, B: Classical{}}
