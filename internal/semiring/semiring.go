// Package semiring implements absorptive c-semirings, the algebraic
// structure underlying semiring-based soft constraints (Bistarelli,
// Montanari, Rossi, J.ACM 1997; Bistarelli & Santini, DSN 2008).
//
// An absorptive semiring is a tuple ⟨A, +, ×, 0, 1⟩ where + is
// commutative, associative, idempotent, with unit 0 and absorbing
// element 1; × is commutative, associative, distributes over +, has
// unit 1 and absorbing element 0. The induced relation a ≤ b iff
// a + b = b is a partial order with minimum 0 and maximum 1; a ≤ b is
// read "b is better than a". All instances in this package are
// complete and therefore residuated: the division a ÷ b is the maximal
// x such that b × x ≤ a (Bistarelli & Gadducci, ECAI 2006), which is
// the weak inverse of × used to retract constraints from a store.
//
// The package provides the instances used in the paper — Weighted,
// Fuzzy, Probabilistic, Classical (boolean) and Set-based — together
// with the Cartesian product construction for multi-criteria
// optimisation and a saturating bounded-weighted instance.
package semiring

// Semiring is an absorptive, complete (hence residuated) c-semiring
// over the value type T. Implementations must be stateless value
// types: all methods must be safe for concurrent use.
type Semiring[T any] interface {
	// Name identifies the instance (e.g. "weighted", "fuzzy").
	Name() string

	// Zero returns the bottom element: the unit of Plus and the
	// absorbing element of Times. It denotes total unacceptability.
	Zero() T

	// One returns the top element: the unit of Times and the
	// absorbing element of Plus. It denotes total acceptability.
	One() T

	// Plus is the additive operation. It is commutative, associative
	// and idempotent, and computes the least upper bound of its
	// arguments in the induced order.
	Plus(a, b T) T

	// Times is the multiplicative (combination) operation. It is
	// commutative, associative, distributes over Plus, and is
	// monotone: combining more constraints can only produce a worse
	// (lower) value.
	Times(a, b T) T

	// Div is the residual of Times: Div(a, b) is the maximal x such
	// that Times(b, x) ≤ a. It is total; when b ≤ a it satisfies
	// Times(b, Div(a, b)) = a for the invertible instances.
	Div(a, b T) T

	// Eq reports whether two values are the same semiring element.
	Eq(a, b T) bool

	// Leq reports a ≤ b in the induced order (b is at least as good
	// as a). Equivalent to Eq(Plus(a, b), b).
	Leq(a, b T) bool

	// Format renders a value for human consumption.
	Format(v T) string
}

// Lt reports a < b: a ≤ b and a ≠ b.
func Lt[T any](s Semiring[T], a, b T) bool {
	return s.Leq(a, b) && !s.Eq(a, b)
}

// Gt reports a > b: b ≤ a and a ≠ b.
func Gt[T any](s Semiring[T], a, b T) bool {
	return s.Leq(b, a) && !s.Eq(a, b)
}

// Comparable reports whether a and b are ordered either way. In
// totally ordered instances it is always true; in Cartesian products
// the order is partial and incomparable pairs exist.
func Comparable[T any](s Semiring[T], a, b T) bool {
	return s.Leq(a, b) || s.Leq(b, a)
}

// Lub folds Plus over vs, returning the least upper bound. The least
// upper bound of no values is Zero.
func Lub[T any](s Semiring[T], vs ...T) T {
	acc := s.Zero()
	for _, v := range vs {
		acc = s.Plus(acc, v)
	}
	return acc
}

// Prod folds Times over vs. The product of no values is One.
func Prod[T any](s Semiring[T], vs ...T) T {
	acc := s.One()
	for _, v := range vs {
		acc = s.Times(acc, v)
	}
	return acc
}

// ValueParser is implemented by semirings whose values have a textual
// form, enabling the nmsccp surface syntax and the scspsolve file
// format to parse literals.
type ValueParser[T any] interface {
	// ParseValue parses the textual form of a semiring value. The
	// strings "0"/"zero"/"bot" and "1"/"one"/"top" need not map to the
	// numerals 0 and 1: each instance maps them to its own Zero/One.
	ParseValue(text string) (T, error)
}
