package semiring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var weightedSamples = []float64{0, 1, 2, 3, 5, 7.5, 11, 100, math.Inf(1)}
var unitSamples = []float64{0, 0.1, 0.25, 0.5, 0.5, 0.8, 0.96, 1}

// shippedInstances is every semiring the package ships, each with
// samples chosen so the law checks are exact (dyadic rationals for
// probabilistic, whose × is floating-point multiplication).
func shippedInstances() []Checker {
	perms := NewSet("read", "write", "exec", "admin")
	pareto := NewProduct[float64, float64](Weighted{}, Fuzzy{})
	var paretoSamples []Pair[float64, float64]
	for _, w := range []float64{0, 2, 5, math.Inf(1)} {
		for _, f := range []float64{0, 0.5, 1} {
			paretoSamples = append(paretoSamples, P(w, f))
		}
	}
	// Products nest: (weighted × fuzzy) × classical.
	triple := NewProduct[Pair[float64, float64], bool](pareto, Classical{})
	var tripleSamples []Pair[Pair[float64, float64], bool]
	for _, w := range []float64{0, 3, math.Inf(1)} {
		for _, f := range []float64{0, 0.5, 1} {
			for _, b := range []bool{false, true} {
				tripleSamples = append(tripleSamples, P(P(w, f), b))
			}
		}
	}
	return []Checker{
		Instance[float64]{S: Weighted{}, Samples: weightedSamples, Invertible: true, Total: true},
		Instance[float64]{S: NewBoundedWeighted(50), Samples: []float64{0, 1, 2, 10, 25, 49, 50}, Total: true},
		Instance[float64]{S: Fuzzy{}, Samples: unitSamples, Invertible: true, Total: true},
		Instance[float64]{S: Probabilistic{}, Samples: []float64{0, 0.125, 0.25, 0.5, 0.75, 1}, Invertible: true, Total: true},
		Instance[bool]{S: Classical{}, Samples: []bool{false, true}, Invertible: true, Total: true},
		Instance[Bitset]{S: perms, Samples: []Bitset{
			0,
			perms.MustValue("read"),
			perms.MustValue("write", "exec"),
			perms.MustValue("read", "admin"),
			perms.One(),
		}, Invertible: true},
		Instance[Pair[float64, float64]]{S: pareto, Samples: paretoSamples, Invertible: true},
		Instance[Pair[Pair[float64, float64], bool]]{S: triple, Samples: tripleSamples, Invertible: true},
	}
}

func TestShippedSemiringLaws(t *testing.T) {
	for _, inst := range shippedInstances() {
		t.Run(inst.Name(), func(t *testing.T) { inst.Check(t) })
	}
}

func TestProductOrderIsNotTotal(t *testing.T) {
	// Sanity-check CheckTotalOrder itself: the Pareto order on a
	// product has incomparable pairs, so the checker must object.
	s := NewProduct[float64, float64](Weighted{}, Fuzzy{})
	rep := &recordingReporter{}
	CheckTotalOrder[Pair[float64, float64]](rep, s, []Pair[float64, float64]{P(2.0, 0.3), P(5.0, 0.9)})
	if rep.failures == 0 {
		t.Error("CheckTotalOrder accepted the Pareto order as total")
	}
}

func TestWeightedOrderIsReversedNumeric(t *testing.T) {
	s := Weighted{}
	if !s.Leq(5, 2) {
		t.Fatal("weighted: 5 ≤S 2 should hold (cost 2 is better)")
	}
	if s.Leq(2, 5) {
		t.Fatal("weighted: 2 ≤S 5 should not hold")
	}
	if !Lt[float64](s, 5, 2) || Lt[float64](s, 2, 2) {
		t.Fatal("weighted: strict order wrong")
	}
}

func TestWeightedDiv(t *testing.T) {
	s := Weighted{}
	cases := []struct{ a, b, want float64 }{
		{7, 3, 4},
		{3, 7, 0},
		{3, 3, 0},
		{math.Inf(1), 3, math.Inf(1)},
		{3, math.Inf(1), 0},
		{math.Inf(1), math.Inf(1), 0},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := s.Div(c.a, c.b); got != c.want {
			t.Errorf("weighted: %v ÷ %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFuzzyDiv(t *testing.T) {
	s := Fuzzy{}
	if got := s.Div(0.3, 0.2); got != 1 {
		t.Errorf("fuzzy: 0.3 ÷ 0.2 = %v, want 1", got)
	}
	if got := s.Div(0.2, 0.7); got != 0.2 {
		t.Errorf("fuzzy: 0.2 ÷ 0.7 = %v, want 0.2", got)
	}
}

func TestProbabilisticDiv(t *testing.T) {
	s := Probabilistic{}
	if got := s.Div(0.25, 0.5); got != 0.5 {
		t.Errorf("probabilistic: 0.25 ÷ 0.5 = %v, want 0.5", got)
	}
	if got := s.Div(0.5, 0.25); got != 1 {
		t.Errorf("probabilistic: 0.5 ÷ 0.25 = %v, want 1", got)
	}
	if got := s.Div(0.5, 0); got != 1 {
		t.Errorf("probabilistic: 0.5 ÷ 0 = %v, want 1", got)
	}
}

func TestQuickWeightedResidual(t *testing.T) {
	s := Weighted{}
	f := func(ai, bi uint16) bool {
		a, b := float64(ai), float64(bi)
		d := s.Div(a, b)
		// Soundness of the residual on arbitrary non-negative values.
		return s.Leq(s.Times(b, d), a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFuzzyLattice(t *testing.T) {
	s := Fuzzy{}
	gen := func(r *rand.Rand) float64 { return float64(r.Intn(1001)) / 1000 }
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := gen(r), gen(r), gen(r)
		lub := s.Plus(a, b)
		if !s.Leq(a, lub) || !s.Leq(b, lub) {
			return false
		}
		if s.Leq(a, c) && s.Leq(b, c) && !s.Leq(lub, c) {
			return false
		}
		// Distributivity of min over max.
		return s.Eq(s.Times(c, s.Plus(a, b)), s.Plus(s.Times(c, a), s.Times(c, b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSetAlgebra(t *testing.T) {
	s := NewSet("a", "b", "c", "d", "e", "f", "g", "h")
	f := func(ar, br, cr uint8) bool {
		a, b, c := Bitset(ar), Bitset(br), Bitset(cr)
		if !s.Eq(s.Times(a, s.Plus(b, c)), s.Plus(s.Times(a, b), s.Times(a, c))) {
			return false
		}
		d := s.Div(a, b)
		if !s.Leq(s.Times(b, d), a) {
			return false
		}
		// De-Morgan-flavoured sanity: dividing by the universe yields a.
		return s.Eq(s.Div(a, s.One()), a&s.One())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickProductPareto(t *testing.T) {
	s := NewProduct[float64, float64](Weighted{}, Probabilistic{})
	f := func(w1, w2 uint8, p1, p2 uint8) bool {
		a := P(float64(w1), float64(p1)/255)
		b := P(float64(w2), float64(p2)/255)
		lub := s.Plus(a, b)
		return s.Leq(a, lub) && s.Leq(b, lub)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProductIncomparable(t *testing.T) {
	s := NewProduct[float64, float64](Weighted{}, Fuzzy{})
	a := P(2.0, 0.3) // cheaper, less preferred
	b := P(5.0, 0.9) // dearer, more preferred
	if Comparable(s, a, b) {
		t.Fatal("expected Pareto-incomparable pair")
	}
	if !Comparable(s, a, a) {
		t.Fatal("a value must be comparable with itself")
	}
}

func TestLubProdHelpers(t *testing.T) {
	w := Weighted{}
	if got := Lub[float64](w, 5, 3, 9); got != 3 {
		t.Errorf("Lub = %v, want 3 (min cost)", got)
	}
	if got := Prod[float64](w, 5, 3, 9); got != 17 {
		t.Errorf("Prod = %v, want 17", got)
	}
	if got := Lub[float64](w); !math.IsInf(got, 1) {
		t.Errorf("empty Lub = %v, want +inf", got)
	}
	if got := Prod[float64](w); got != 0 {
		t.Errorf("empty Prod = %v, want 0", got)
	}
}

func TestBitsetOps(t *testing.T) {
	b := BitsetOf(0, 3, 5)
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if !b.Contains(3) || b.Contains(2) {
		t.Fatal("Contains wrong")
	}
	if got := b.With(2).Without(0); got != BitsetOf(2, 3, 5) {
		t.Fatalf("With/Without = %v", got.Elems())
	}
	want := []int{0, 3, 5}
	got := b.Elems()
	if len(got) != len(want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
	if !BitsetOf(3).SubsetOf(b) || b.SubsetOf(BitsetOf(3)) {
		t.Fatal("SubsetOf wrong")
	}
}

func TestSetFormatAndParse(t *testing.T) {
	s := NewSet("read", "write", "exec")
	v := s.MustValue("exec", "read")
	if got := s.Format(v); got != "{exec,read}" {
		t.Errorf("Format = %q", got)
	}
	parsed, err := s.ParseValue("{read, exec}")
	if err != nil {
		t.Fatal(err)
	}
	if parsed != v {
		t.Errorf("ParseValue = %v, want %v", parsed.Elems(), v.Elems())
	}
	if _, err := s.ParseValue("{bogus}"); err == nil {
		t.Error("expected error for unknown element")
	}
	if top, _ := s.ParseValue("top"); top != s.One() {
		t.Error("top should parse to universe")
	}
	if empty, _ := s.ParseValue("{}"); empty != 0 {
		t.Error("{} should parse to empty set")
	}
}

func TestNumericParsers(t *testing.T) {
	if v, err := (Weighted{}).ParseValue("inf"); err != nil || !math.IsInf(v, 1) {
		t.Errorf("weighted inf parse: %v %v", v, err)
	}
	if v, err := (Weighted{}).ParseValue("4.5"); err != nil || v != 4.5 {
		t.Errorf("weighted 4.5 parse: %v %v", v, err)
	}
	if _, err := (Weighted{}).ParseValue("-1"); err == nil {
		t.Error("weighted should reject negatives")
	}
	if _, err := (Fuzzy{}).ParseValue("1.5"); err == nil {
		t.Error("fuzzy should reject >1")
	}
	if v, err := (Fuzzy{}).ParseValue("one"); err != nil || v != 1 {
		t.Errorf("fuzzy one parse: %v %v", v, err)
	}
	if v, err := (Classical{}).ParseValue("true"); err != nil || !v {
		t.Errorf("classical true parse: %v %v", v, err)
	}
	if _, err := (Classical{}).ParseValue("maybe"); err == nil {
		t.Error("classical should reject non-boolean")
	}
	if v, err := (Probabilistic{}).ParseValue("0.96"); err != nil || v != 0.96 {
		t.Errorf("probabilistic parse: %v %v", v, err)
	}
}

func TestConstructorPanics(t *testing.T) {
	mustPanic(t, "empty set universe", func() { NewSet() })
	mustPanic(t, "oversized set universe", func() {
		elems := make([]string, 65)
		for i := range elems {
			elems[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		NewSet(elems...)
	})
	mustPanic(t, "duplicate set element", func() { NewSet("a", "a") })
	mustPanic(t, "non-positive bound", func() { NewBoundedWeighted(0) })
	mustPanic(t, "infinite bound", func() { NewBoundedWeighted(math.Inf(1)) })
	mustPanic(t, "nil product component", func() { NewProduct[float64, float64](nil, Fuzzy{}) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestFormats(t *testing.T) {
	if got := (Weighted{}).Format(math.Inf(1)); got != "inf" {
		t.Errorf("weighted inf format = %q", got)
	}
	if got := (Classical{}).Format(true); got != "true" {
		t.Errorf("classical format = %q", got)
	}
	p := NewProduct[float64, bool](Weighted{}, Classical{})
	if got := p.Format(P(3.0, true)); got != "⟨3,true⟩" {
		t.Errorf("product format = %q", got)
	}
	if p.Name() != "weighted×classical" {
		t.Errorf("product name = %q", p.Name())
	}
}

func TestNamesAndMoreFormats(t *testing.T) {
	names := map[string]string{
		(Weighted{}).Name():           "weighted",
		(Fuzzy{}).Name():              "fuzzy",
		(Probabilistic{}).Name():      "probabilistic",
		(Classical{}).Name():          "classical",
		NewBoundedWeighted(50).Name(): "weighted[0,50]",
		NewSet("a", "b").Name():       "set[2]",
	}
	for got, want := range names {
		if got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
	if got := (Fuzzy{}).Format(0.25); got != "0.25" {
		t.Errorf("fuzzy format = %q", got)
	}
	if got := (Probabilistic{}).Format(0.5); got != "0.5" {
		t.Errorf("probabilistic format = %q", got)
	}
	if got := (Classical{}).Format(false); got != "false" {
		t.Errorf("classical format = %q", got)
	}
	if got := NewBoundedWeighted(10).Format(3); got != "3" {
		t.Errorf("bounded format = %q", got)
	}
}

func TestBoundedWeightedParseClamps(t *testing.T) {
	s := NewBoundedWeighted(10)
	if v, err := s.ParseValue("25"); err != nil || v != 10 {
		t.Errorf("parse 25 = %v, %v; want clamp to 10", v, err)
	}
	if v, err := s.ParseValue("4"); err != nil || v != 4 {
		t.Errorf("parse 4 = %v, %v", v, err)
	}
	if _, err := s.ParseValue("nope"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := (Weighted{}).ParseValue("abc"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := (Fuzzy{}).ParseValue("xyz"); err == nil {
		t.Error("expected parse error")
	}
	if v, err := (Weighted{}).ParseValue("one"); err != nil || v != 0 {
		t.Errorf("weighted 'one' = %v, %v; want 0", v, err)
	}
	if v, err := (Fuzzy{}).ParseValue("zero"); err != nil || v != 0 {
		t.Errorf("fuzzy 'zero' = %v, %v", v, err)
	}
}

func TestLawCheckersCatchBrokenSemiring(t *testing.T) {
	// A deliberately broken "semiring" whose Div is not the residual:
	// the law checkers must report failures through the reporter.
	rep := &recordingReporter{}
	CheckResiduation[float64](rep, brokenDiv{}, []float64{0, 0.5, 1}, true)
	if rep.failures == 0 {
		t.Error("CheckResiduation accepted a broken division")
	}
	rep2 := &recordingReporter{}
	CheckLaws[float64](rep2, brokenPlus{}, []float64{0, 0.5, 1})
	if rep2.failures == 0 {
		t.Error("CheckLaws accepted a non-idempotent plus")
	}
}

type recordingReporter struct{ failures int }

func (r *recordingReporter) Helper()               {}
func (r *recordingReporter) Errorf(string, ...any) { r.failures++ }

// brokenDiv is fuzzy with a constant (wrong) division.
type brokenDiv struct{ Fuzzy }

func (brokenDiv) Div(a, b float64) float64 { return 0 }

// brokenPlus is fuzzy with a non-idempotent plus.
type brokenPlus struct{ Fuzzy }

func (brokenPlus) Plus(a, b float64) float64 {
	v := a + b
	if v > 1 {
		return 1
	}
	return v
}
