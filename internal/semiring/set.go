package semiring

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Bitset is a subset of a universe of at most 64 named elements,
// represented as a bit mask. Bit i set means element i is present.
type Bitset uint64

// BitsetOf returns the set containing exactly the given elements.
func BitsetOf(elems ...int) Bitset {
	var b Bitset
	for _, e := range elems {
		b |= 1 << uint(e)
	}
	return b
}

// Contains reports whether element e is in the set.
func (b Bitset) Contains(e int) bool { return b&(1<<uint(e)) != 0 }

// With returns the set with element e added.
func (b Bitset) With(e int) Bitset { return b | 1<<uint(e) }

// Without returns the set with element e removed.
func (b Bitset) Without(e int) Bitset { return b &^ (1 << uint(e)) }

// Len returns the number of elements in the set.
func (b Bitset) Len() int { return bits.OnesCount64(uint64(b)) }

// Elems returns the elements of the set in increasing order.
func (b Bitset) Elems() []int {
	out := make([]int, 0, b.Len())
	for v := uint64(b); v != 0; {
		i := bits.TrailingZeros64(v)
		out = append(out, i)
		v &^= 1 << uint(i)
	}
	return out
}

// SubsetOf reports whether b ⊆ other.
func (b Bitset) SubsetOf(other Bitset) bool { return b&^other == 0 }

// Set is the set-based semiring ⟨P(A), ∪, ∩, ∅, A⟩ over a finite
// universe A of named elements (Sec. 4). It represents feature sets:
// security rights held, admissible time slots, supported encodings.
// Combination is intersection (a composition only offers what all
// components offer) and the order is set inclusion.
type Set struct {
	// Elements names the universe; position i names bit i. The zero
	// value is unusable; construct with NewSet.
	Elements []string

	index map[string]int
	mask  Bitset
}

// NewSet returns the set-based semiring over the given universe. It
// panics if the universe is empty, exceeds 64 elements, or contains
// duplicates, since any of those make the carrier ill-defined.
func NewSet(elements ...string) *Set {
	if len(elements) == 0 || len(elements) > 64 {
		panic(fmt.Sprintf("semiring: Set universe must have 1..64 elements, got %d", len(elements)))
	}
	idx := make(map[string]int, len(elements))
	for i, e := range elements {
		if _, dup := idx[e]; dup {
			panic(fmt.Sprintf("semiring: duplicate Set element %q", e))
		}
		idx[e] = i
	}
	return &Set{
		Elements: append([]string(nil), elements...),
		index:    idx,
		mask:     Bitset(1)<<uint(len(elements)) - 1,
	}
}

var (
	_ Semiring[Bitset]    = (*Set)(nil)
	_ ValueParser[Bitset] = (*Set)(nil)
)

// Name implements Semiring.
func (s *Set) Name() string { return fmt.Sprintf("set[%d]", len(s.Elements)) }

// Zero returns the empty set.
func (s *Set) Zero() Bitset { return 0 }

// One returns the full universe.
func (s *Set) One() Bitset { return s.mask }

// Plus returns a ∪ b.
func (s *Set) Plus(a, b Bitset) Bitset { return (a | b) & s.mask }

// Times returns a ∩ b.
func (s *Set) Times(a, b Bitset) Bitset { return a & b & s.mask }

// Div returns a ∪ (A \ b), the maximal x with b ∩ x ⊆ a.
func (s *Set) Div(a, b Bitset) Bitset { return (a | (s.mask &^ b)) & s.mask }

// Eq implements Semiring.
func (s *Set) Eq(a, b Bitset) bool { return a&s.mask == b&s.mask }

// Leq is set inclusion.
func (s *Set) Leq(a, b Bitset) bool { return (a & s.mask).SubsetOf(b & s.mask) }

// Format renders the set as {e1,e2,...} using the universe's names.
func (s *Set) Format(v Bitset) string {
	names := make([]string, 0, v.Len())
	for _, i := range (v & s.mask).Elems() {
		names = append(names, s.Elements[i])
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ",") + "}"
}

// Value returns the set containing the named elements. Unknown names
// are reported as an error rather than silently dropped.
func (s *Set) Value(names ...string) (Bitset, error) {
	var b Bitset
	for _, n := range names {
		i, ok := s.index[n]
		if !ok {
			return 0, fmt.Errorf("set: element %q not in universe", n)
		}
		b = b.With(i)
	}
	return b, nil
}

// MustValue is Value but panics on unknown names; intended for
// literals in tests and examples.
func (s *Set) MustValue(names ...string) Bitset {
	b, err := s.Value(names...)
	if err != nil {
		panic(err)
	}
	return b
}

// ParseValue parses "{a,b,c}" (braces optional, empty for ∅, or
// "top"/"one" for the universe).
func (s *Set) ParseValue(text string) (Bitset, error) {
	t := strings.TrimSpace(text)
	switch strings.ToLower(t) {
	case "top", "one":
		return s.One(), nil
	case "bot", "zero", "{}", "":
		return 0, nil
	}
	t = strings.TrimPrefix(t, "{")
	t = strings.TrimSuffix(t, "}")
	if strings.TrimSpace(t) == "" {
		return 0, nil
	}
	parts := strings.Split(t, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return s.Value(parts...)
}
