package cache

import (
	"fmt"
	"sync"
	"testing"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

func key(s string) Key {
	h := NewHasher("test")
	h.Str(s)
	return h.Sum()
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(64)
	if _, ok := c.Get(TierSearch, key("a")); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(TierSearch, key("a"), 42)
	v, ok := c.Get(TierSearch, key("a"))
	if !ok || v.(int) != 42 {
		t.Fatalf("got (%v,%v), want (42,true)", v, ok)
	}
	// Same key, different tier: distinct entries.
	if _, ok := c.Get(TierFixpoint, key("a")); ok {
		t.Fatal("tier leak: fixpoint hit for a search-tier entry")
	}
	c.Put(TierSearch, key("a"), 43)
	if v, _ := c.Get(TierSearch, key("a")); v.(int) != 43 {
		t.Fatalf("replace did not stick: got %v", v)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache
	c.Put(TierSearch, key("a"), 1)
	if _, ok := c.Get(TierSearch, key("a")); ok {
		t.Fatal("nil cache hit")
	}
	c.NoteWarmStart(true)
	if c.Len() != 0 {
		t.Fatal("nil cache non-empty")
	}
	if s := c.Snapshot(); s != (Stats{}) {
		t.Fatalf("nil cache stats %+v", s)
	}
	if New(0) != nil {
		t.Fatal("New(0) should return the nil always-miss cache")
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity 16 → one entry per shard; two entries landing in the
	// same shard must evict the older one.
	c := New(16)
	var a, b Key
	a = key("x0")
	found := false
	for i := 1; i < 10000 && !found; i++ {
		b = key(fmt.Sprintf("x%d", i))
		if int(b[0])&(numShards-1) == int(a[0])&(numShards-1) {
			found = true
		}
	}
	if !found {
		t.Fatal("no shard-colliding key found")
	}
	c.Put(TierSearch, a, "a")
	c.Put(TierTables, b, "b")
	if _, ok := c.Get(TierSearch, a); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := c.Get(TierTables, b); !ok {
		t.Fatal("newest entry evicted")
	}
	st := c.Snapshot()
	if st.Search.Evictions != 1 {
		t.Fatalf("search evictions = %d, want 1 (evicted entry counts under its own tier)", st.Search.Evictions)
	}
}

func TestStatsCount(t *testing.T) {
	c := New(64)
	c.Get(TierFixpoint, key("a"))
	c.Put(TierFixpoint, key("a"), 1)
	c.Get(TierFixpoint, key("a"))
	c.Get(TierFixpoint, key("a"))
	c.NoteWarmStart(true)
	c.NoteWarmStart(false)
	st := c.Snapshot()
	if st.Fixpoint.Hits != 2 || st.Fixpoint.Misses != 1 {
		t.Fatalf("fixpoint stats %+v, want 2 hits / 1 miss", st.Fixpoint)
	}
	if st.WarmApplied != 1 || st.WarmFallback != 1 {
		t.Fatalf("warm stats %d/%d, want 1/1", st.WarmApplied, st.WarmFallback)
	}
	if got := TierFixpoint.String(); got != "fixpoint" {
		t.Fatalf("tier label %q", got)
	}
}

func TestHasherFieldBoundaries(t *testing.T) {
	h1 := NewHasher("t")
	h1.Str("ab")
	h1.Str("c")
	h2 := NewHasher("t")
	h2.Str("a")
	h2.Str("bc")
	if h1.Sum() == h2.Sum() {
		t.Fatal("length prefixing failed: concatenation aliased")
	}
	if NewHasher("x").Sum() == NewHasher("y").Sum() {
		t.Fatal("domain separation failed")
	}
}

func twoVarProblem(val float64) *core.Problem[float64] {
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("x", core.IntDomain(0, 2))
	y := s.AddVariable("y", core.IntDomain(0, 2))
	p := core.NewProblem(s, x)
	p.Add(core.NewConstraint(s, []core.Variable{x, y}, func(a core.Assignment) float64 {
		if a.Num(x) == a.Num(y) {
			return val
		}
		return 0
	}))
	return p
}

func TestProblemKeyContentAddressed(t *testing.T) {
	// Identical content from independent constructions hashes equal…
	if ProblemKey(twoVarProblem(3)) != ProblemKey(twoVarProblem(3)) {
		t.Fatal("equal problems hash apart")
	}
	// …and any content change (one table value) hashes apart.
	if ProblemKey(twoVarProblem(3)) == ProblemKey(twoVarProblem(4)) {
		t.Fatal("different tables hash equal")
	}
	// Tags discriminate.
	if ProblemKey(twoVarProblem(3), "a") == ProblemKey(twoVarProblem(3), "b") {
		t.Fatal("tags ignored")
	}
	if ProblemKey(twoVarProblem(3)) == ProblemKey(twoVarProblem(3), "a") {
		t.Fatal("tag presence ignored")
	}
}

// TestConcurrentAccess hammers one cache from many goroutines across
// tiers and keys; run under -race it is the package's data-race
// witness for the sharded lock discipline.
func TestConcurrentAccess(t *testing.T) {
	c := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := key(fmt.Sprintf("k%d", (g*7+i)%200))
				tier := Tier(i % int(numTiers))
				if v, ok := c.Get(tier, k); ok {
					if v.(int) < 0 {
						t.Error("corrupt value")
						return
					}
				} else {
					c.Put(tier, k, i)
				}
				c.NoteWarmStart(i%2 == 0)
			}
		}()
	}
	wg.Wait()
	if c.Len() > 128+numShards {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
	st := c.Snapshot()
	if st.Search.Hits+st.Search.Misses == 0 {
		t.Fatal("no search-tier traffic recorded")
	}
}
