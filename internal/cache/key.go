package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"

	"softsoa/internal/core"
)

// Key is a content hash: equal content yields equal keys, and
// distinct well-formed content colliding would require a SHA-256
// collision. Keys are comparable and usable as map keys.
type Key [sha256.Size]byte

// Hasher accumulates canonical content into a Key. Every field write
// is length- or width-prefixed, so concatenation ambiguities ("ab"+"c"
// vs "a"+"bc") cannot alias keys, and every Hasher starts from a
// domain-separation tag so keys from different call sites (problem
// hashes, negotiation plans, warm-start slots) live in disjoint
// keyspaces.
type Hasher struct {
	h   hash.Hash
	buf [binary.MaxVarintLen64]byte
}

// NewHasher returns a hasher domain-separated by tag.
func NewHasher(tag string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.Str(tag)
	return h
}

func (h *Hasher) uvarint(n uint64) {
	k := binary.PutUvarint(h.buf[:], n)
	//lint:ignore errcheck hash.Hash.Write never fails by contract
	h.h.Write(h.buf[:k])
}

// Str writes a length-prefixed string.
func (h *Hasher) Str(s string) {
	h.uvarint(uint64(len(s)))
	//lint:ignore errcheck hash.Hash.Write never fails by contract
	h.h.Write([]byte(s))
}

// Int writes a signed integer.
func (h *Hasher) Int(n int) {
	k := binary.PutVarint(h.buf[:], int64(n))
	//lint:ignore errcheck hash.Hash.Write never fails by contract
	h.h.Write(h.buf[:k])
}

// Uint64 writes an unsigned integer.
func (h *Hasher) Uint64(n uint64) { h.uvarint(n) }

// Float writes a float64 by its exact bit pattern, so values that
// compare equal but differ in bits (-0 vs 0) hash apart — the
// conservative direction for a memo key.
func (h *Hasher) Float(f float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	//lint:ignore errcheck hash.Hash.Write never fails by contract
	h.h.Write(b[:])
}

// Bool writes a boolean.
func (h *Hasher) Bool(v bool) {
	if v {
		//lint:ignore errcheck hash.Hash.Write never fails by contract
		h.h.Write([]byte{1})
	} else {
		//lint:ignore errcheck hash.Hash.Write never fails by contract
		h.h.Write([]byte{0})
	}
}

// Floats writes a length-prefixed run of float64 bit patterns in a
// single hash write — the bulk form of Float, sized for constraint
// tables where per-value Write calls would dominate.
func (h *Hasher) Floats(vs []float64) {
	h.uvarint(uint64(len(vs)))
	buf := make([]byte, 8*len(vs))
	for i, f := range vs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(f))
	}
	//lint:ignore errcheck hash.Hash.Write never fails by contract
	h.h.Write(buf)
}

// FloatPtr writes an optional float64: presence then value.
func (h *Hasher) FloatPtr(f *float64) {
	h.Bool(f != nil)
	if f != nil {
		h.Float(*f)
	}
}

// Sum finalises the key. The hasher may keep accumulating afterwards;
// each Sum reflects everything written so far.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// ProblemKey hashes an SCSP's full content — semiring name, variables
// with their domains, the variables of interest, and every constraint
// (scope, then the table in mixed-radix order) — plus any caller tags
// (solver configuration, tier discriminators). Problems with equal
// canonical content hash equal regardless of how they were built.
//
// float64-carried constraints hash their tables by exact bit pattern
// in bulk — the hot path for every in-tree semiring but Set and
// Product — so keying costs a small fraction of the propagation or
// search it memoises. Other carriers fall back to the byte-stable
// Constraint.String rendering. The two encodings never mix for one
// carrier type, so keys stay canonical within each keyspace.
func ProblemKey[T any](p *core.Problem[T], tags ...string) Key {
	h := NewHasher("softsoa/problem")
	s := p.Space()
	h.Str(s.Semiring().Name())
	vars := s.Variables()
	h.Int(len(vars))
	for _, v := range vars {
		h.Str(string(v))
		dom := s.Domain(v)
		h.Int(len(dom))
		for _, d := range dom {
			h.Str(d.Label)
			h.Float(d.Num)
		}
	}
	con := p.Con()
	h.Int(len(con))
	for _, v := range con {
		h.Str(string(v))
	}
	cs := p.Constraints()
	h.Int(len(cs))
	var fbuf []float64
	for _, c := range cs {
		scope := c.Scope()
		h.Int(len(scope))
		for _, v := range scope {
			h.Str(string(v))
		}
		if cf, ok := any(c).(*core.Constraint[float64]); ok {
			fbuf = cf.Values(fbuf[:0])
			h.Floats(fbuf)
		} else {
			h.Str(c.String())
		}
	}
	h.Int(len(tags))
	for _, t := range tags {
		h.Str(t)
	}
	return h.Sum()
}
