// Package cache is the broker's content-addressed solve cache: a
// bounded, sharded, concurrency-safe memo store keyed by canonical
// SHA-256 hashes of (program, store, semiring) content. The semiring
// semantics make solving safely memoisable — compilation, the c∅
// propagation fixpoint and branch-and-bound results are pure functions
// of their inputs — so a cache read can never change a computed
// result, only skip recomputing it.
//
// Entries are grouped into three tiers, mirroring the negotiation
// pipeline's three recomputation sinks:
//
//   - TierTables holds compiled constraint artifacts: the negotiator's
//     per-(offer, requirement) spaces and constraint tables, built once
//     per distinct QoS template instead of once per request.
//   - TierFixpoint holds propagation fixpoints keyed by problem
//     content and round cap: the c∅ bound plus the rewritten problem,
//     shared between the negotiator's precheck and the solver's
//     WithPropagation seeding (solver.PropagateCached).
//   - TierSearch holds search outcomes: exact branch-and-bound memo
//     hits, full negotiation/renegotiation plans, and the warm-start
//     incumbent slots that seed a perturbed re-solve
//     (solver.WithWarmStart).
//
// Keys are computed with Hasher/ProblemKey over the same canonical
// renderings the flight recorder serialises (semiring Format,
// Constraint.String tables in mixed-radix order, synthesised nmsccp
// programs), so key determinism rides on the byte-stability already
// proven for replay. Two problems hash equal iff their canonical
// renderings are byte-equal; collisions between well-formed keys would
// require a SHA-256 collision.
//
// Eviction is LRU per shard: the capacity is split across 16 shards,
// each with its own mutex, map and recency list, so concurrent
// negotiations on different keys rarely contend. Get/Put/Len/Stats on
// a nil *Cache are safe no-ops, letting callers thread an optional
// cache without nil checks.
//
// The package is on the determinism analyzer's pure-layer import
// allowlist: values are only ever bit-exact results of the
// computation they memoise, so the pure solver reading the cache
// cannot observe anything a cold run would not produce.
package cache
