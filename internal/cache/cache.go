package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Tier partitions the cache by what kind of artifact an entry holds;
// hit/miss/evict statistics are kept per tier.
type Tier int

const (
	// TierTables holds compiled constraint tables (negotiation spaces,
	// offer/requirement constraints).
	TierTables Tier = iota
	// TierFixpoint holds propagation fixpoints: the c∅ bound and the
	// rewritten problem for a given round cap.
	TierFixpoint
	// TierSearch holds search outcomes: exact B&B memos, negotiation
	// and renegotiation plans, and warm-start incumbent slots.
	TierSearch

	numTiers
)

// String returns the tier's metric label.
func (t Tier) String() string {
	switch t {
	case TierTables:
		return "tables"
	case TierFixpoint:
		return "fixpoint"
	case TierSearch:
		return "search"
	}
	return "unknown"
}

// TierStats is one tier's counters, read via Cache.TierStats.
type TierStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// Stats is a point-in-time snapshot of every counter.
type Stats struct {
	Tables       TierStats
	Fixpoint     TierStats
	Search       TierStats
	WarmApplied  int64
	WarmFallback int64
}

const numShards = 16

// entry is one cached value with the addressing needed to unlink it
// from its tier map on eviction.
type entry struct {
	tier Tier
	key  Key
	v    any
}

// shard is one lock domain: a per-tier key map plus a single recency
// list shared by the shard's tiers (the capacity bound is per shard,
// not per tier).
type shard struct {
	mu  sync.Mutex
	m   [numTiers]map[Key]*list.Element // guarded by mu
	lru *list.List                      // guarded by mu; front = most recent
}

type tierCounters struct {
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// Cache is a bounded, sharded, concurrency-safe memo store. The zero
// value is not usable; construct with New. A nil *Cache is a valid
// always-miss cache: every method is a nil-safe no-op.
type Cache struct {
	capPerShard  int
	shards       [numShards]shard
	stats        [numTiers]tierCounters
	warmApplied  atomic.Int64
	warmFallback atomic.Int64
}

// New returns a cache bounded to roughly capacity entries (split
// evenly across shards, so the effective bound rounds up to a
// multiple of the shard count). A capacity <= 0 returns nil — the
// always-miss cache — so callers can thread a size straight through.
func New(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	per := (capacity + numShards - 1) / numShards
	return &Cache{capPerShard: per}
}

func (c *Cache) shardFor(key Key) *shard {
	return &c.shards[int(key[0])&(numShards-1)]
}

// Get returns the value stored under (tier, key) and refreshes its
// recency. The second result reports a hit. Lookups on the solve path
// happen once per request, before the search inner loop; the method
// itself stays allocation-free so callers inside annotated hot
// regions stay provably so.
//
//softsoa:hotpath
func (c *Cache) Get(tier Tier, key Key) (any, bool) {
	if c == nil {
		return nil, false
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	el, ok := sh.m[tier][key]
	if ok {
		sh.lru.MoveToFront(el)
	}
	sh.mu.Unlock()
	if !ok {
		c.stats[tier].misses.Add(1)
		return nil, false
	}
	c.stats[tier].hits.Add(1)
	return el.Value.(*entry).v, true
}

// Put stores v under (tier, key), replacing any previous value, and
// evicts least-recently-used entries (of any tier) past the shard's
// capacity. Values must be immutable or defensively copied by the
// caller: later Gets return the same reference.
func (c *Cache) Put(tier Tier, key Key, v any) {
	if c == nil {
		return
	}
	sh := c.shardFor(key)
	evicted := make([]Tier, 0, 1)
	sh.mu.Lock()
	if sh.lru == nil {
		sh.lru = list.New()
		for t := range sh.m {
			sh.m[t] = make(map[Key]*list.Element)
		}
	}
	if el, ok := sh.m[tier][key]; ok {
		el.Value.(*entry).v = v
		sh.lru.MoveToFront(el)
		sh.mu.Unlock()
		return
	}
	sh.m[tier][key] = sh.lru.PushFront(&entry{tier: tier, key: key, v: v})
	for sh.lru.Len() > c.capPerShard {
		back := sh.lru.Back()
		ev := back.Value.(*entry)
		sh.lru.Remove(back)
		delete(sh.m[ev.tier], ev.key)
		evicted = append(evicted, ev.tier)
	}
	sh.mu.Unlock()
	for _, t := range evicted {
		c.stats[t].evictions.Add(1)
	}
}

// Len returns the total number of entries across all shards and
// tiers.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if sh.lru != nil {
			n += sh.lru.Len()
		}
		sh.mu.Unlock()
	}
	return n
}

// NoteWarmStart records the outcome of a warm-start attempt: applied
// when prior incumbents seeded the search, fallback when the delta
// invalidated every incumbent and the solve ran cold.
func (c *Cache) NoteWarmStart(applied bool) {
	if c == nil {
		return
	}
	if applied {
		c.warmApplied.Add(1)
	} else {
		c.warmFallback.Add(1)
	}
}

// TierStats returns one tier's counters.
func (c *Cache) TierStats(t Tier) TierStats {
	if c == nil || t < 0 || t >= numTiers {
		return TierStats{}
	}
	return TierStats{
		Hits:      c.stats[t].hits.Load(),
		Misses:    c.stats[t].misses.Load(),
		Evictions: c.stats[t].evictions.Load(),
	}
}

// WarmStats returns the warm-start outcome counters.
func (c *Cache) WarmStats() (applied, fallback int64) {
	if c == nil {
		return 0, 0
	}
	return c.warmApplied.Load(), c.warmFallback.Load()
}

// Snapshot returns every counter at once.
func (c *Cache) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	a, f := c.WarmStats()
	return Stats{
		Tables:       c.TierStats(TierTables),
		Fixpoint:     c.TierStats(TierFixpoint),
		Search:       c.TierStats(TierSearch),
		WarmApplied:  a,
		WarmFallback: f,
	}
}
