package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"softsoa/internal/broker"
	"softsoa/internal/coalition"
	"softsoa/internal/core"
	"softsoa/internal/soa"
	"softsoa/internal/solver"
	"softsoa/internal/trust"
	"softsoa/internal/workload"
)

// runE15 measures the soft arc/node-consistency propagation ablation:
// equivalence preservation, the quality of the c∅ bound, and the
// effect on branch-and-bound search.
func runE15() ([]Check, []string) {
	var cs []Check
	notes := []string{"n  |  c∅ bound  blevel  |  B&B nodes  (propagated)  shifts"}
	for _, n := range []int{5, 7, 9} {
		p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
			Vars: n, DomainSize: 3, Density: 0.7, Tightness: 1, Seed: int64(n) * 3,
		})
		if err != nil {
			return []Check{{"workload", "ok", err.Error(), false}}, nil
		}
		q, czero, stats := solver.Propagate(p, 0)
		equiv := core.Eq(p.Combined(), q.Combined())
		cs = append(cs, Check{
			Name:     fmt.Sprintf("n=%d: propagation preserves ⊗C", n),
			Paper:    "equivalent reformulation",
			Measured: yes(equiv),
			OK:       equiv,
		})
		sr := p.Space().Semiring()
		blevel := p.Blevel()
		sound := sr.Leq(blevel, czero)
		cs = append(cs, Check{
			Name:     fmt.Sprintf("n=%d: c∅ bounds the blevel", n),
			Paper:    "blevel ≤S c∅",
			Measured: fmt.Sprintf("cost floor %v ≤ optimum %v", sr.Format(czero), sr.Format(blevel)),
			OK:       sound,
		})
		orig := solver.BranchAndBound(p)
		prop := solver.BranchAndBound(q)
		cs = append(cs, Check{
			Name:     fmt.Sprintf("n=%d: optimum unchanged", n),
			Paper:    "equal blevels",
			Measured: fmt.Sprintf("%v = %v", orig.Blevel, prop.Blevel),
			OK:       orig.Blevel == prop.Blevel,
		})
		notes = append(notes, fmt.Sprintf("%d  |  %8.1f  %6.1f  |  %9d  %12d  %6d",
			n, czero, blevel, orig.Stats.Nodes, prop.Stats.Nodes, stats.Shifts))
	}
	return cs, notes
}

// runE16 compares exact coalition formation against simulated
// annealing across network sizes.
func runE16() ([]Check, []string) {
	var cs []Check
	notes := []string{"n   |  exact obj   exact time  |  anneal obj  anneal time"}
	for _, n := range []int{6, 8, 10} {
		net := trust.Random(n, 2, int64(n))
		exact := coalition.Exact(net, trust.Min, coalition.WithMaxCoalitions(2))
		sa := coalition.Anneal(net, trust.Min,
			coalition.AnnealParams{Seed: int64(n)}, coalition.WithMaxCoalitions(2))
		cs = append(cs, Check{
			Name:     fmt.Sprintf("n=%d: anneal is stable and ≤ exact", n),
			Paper:    "sound heuristic",
			Measured: fmt.Sprintf("stable=%v %.4f ≤ %.4f", sa.Stable, sa.Objective, exact.Objective),
			OK:       sa.Stable && sa.Objective <= exact.Objective,
		})
		notes = append(notes, fmt.Sprintf("%-3d |  %9.4f   %10s  |  %10.4f  %10s",
			n, exact.Objective, exact.Elapsed.Round(time.Microsecond),
			sa.Objective, sa.Elapsed.Round(time.Microsecond)))
	}
	// A size exact cannot touch: anneal must still deliver a stable
	// valid partition.
	big := trust.Random(18, 3, 99)
	sa := coalition.Anneal(big, trust.Min,
		coalition.AnnealParams{Seed: 99, Steps: 4000}, coalition.WithMaxCoalitions(3))
	valid := coalition.Validate(big, sa.Partition) == nil
	cs = append(cs, Check{
		Name:     "n=18 (B(18) ≈ 6.8e11 partitions): anneal delivers",
		Paper:    "stable valid partition",
		Measured: fmt.Sprintf("stable=%v valid=%v obj=%.4f in %s", sa.Stable, valid, sa.Objective, sa.Elapsed.Round(time.Millisecond)),
		OK:       sa.Stable && valid,
	})
	return cs, notes
}

// runE17 exercises multi-objective (cost × reliability) composition:
// the Pareto frontier must contain only non-dominated bindings and
// every single-objective optimum.
func runE17() ([]Check, []string) {
	var cs []Check
	notes := []string{"stages providers | frontier size | cheapest (cost, rel) | most reliable (cost, rel)"}
	for _, stages := range []int{2, 3, 4} {
		reg := soa.NewRegistry()
		rng := int64(stages) * 13
		params := workload.CatalogParams{
			Stages: stages, ProvidersPerStage: 5, Regions: 2, Seed: rng,
		}
		// Publish documents carrying BOTH metrics.
		if err := dualCatalog(reg, params); err != nil {
			return []Check{{"catalog", "ok", err.Error(), false}}, nil
		}
		comp := broker.NewComposer(reg, broker.LinkPenalty{Cost: 6, Factor: 0.92})
		frontier, err := comp.ComposeMultiObjective(broker.PipelineRequest{
			Client: "bench", Stages: params.StageNames(), Metric: soa.MetricCost,
		})
		if err != nil {
			return []Check{{"compose", "ok", err.Error(), false}}, nil
		}
		nonDominated := true
		for i := range frontier {
			for j := range frontier {
				if i == j {
					continue
				}
				if frontier[j].TotalCost <= frontier[i].TotalCost &&
					frontier[j].TotalReliability >= frontier[i].TotalReliability &&
					(frontier[j].TotalCost < frontier[i].TotalCost ||
						frontier[j].TotalReliability > frontier[i].TotalReliability) {
					nonDominated = false
				}
			}
		}
		cs = append(cs, Check{
			Name:     fmt.Sprintf("k=%d: frontier is mutually non-dominated", stages),
			Paper:    "Pareto frontier",
			Measured: fmt.Sprintf("%d points, clean=%v", len(frontier), nonDominated),
			OK:       nonDominated && len(frontier) > 0,
		})
		first, last := frontier[0], frontier[len(frontier)-1]
		notes = append(notes, fmt.Sprintf("%-6d %-9d | %13d | (%6.2f, %.4f)      | (%6.2f, %.4f)",
			stages, 5, len(frontier), first.TotalCost, first.TotalReliability,
			last.TotalCost, last.TotalReliability))
	}
	return cs, notes
}

// dualCatalog publishes providers advertising both cost and
// reliability, with anticorrelated levels (cheaper providers are
// flakier) so the Pareto frontier is non-trivial.
func dualCatalog(reg *soa.Registry, p workload.CatalogParams) error {
	rng := rand.New(rand.NewSource(p.Seed))
	for s, stage := range p.StageNames() {
		for j := 0; j < p.ProvidersPerStage; j++ {
			cost := 2 + 16*rng.Float64()
			rel := 75 + cost + 5*rng.Float64() // dearer → more reliable
			if rel > 99 {
				rel = 99
			}
			doc := &soa.Document{
				Service:  stage,
				Provider: fmt.Sprintf("prov-%d-%d", s, j),
				Region:   fmt.Sprintf("region%d", rng.Intn(p.Regions)),
				Attributes: []soa.Attribute{
					{Name: "fee", Metric: soa.MetricCost, Base: cost, Resource: "load", MaxUnits: 2},
					{Name: "uptime", Metric: soa.MetricReliability, Base: rel, Resource: "load", MaxUnits: 2},
				},
			}
			if err := reg.Publish(doc); err != nil {
				return err
			}
		}
	}
	return nil
}
