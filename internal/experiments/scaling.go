package experiments

import (
	"fmt"
	"time"

	"softsoa/internal/broker"
	"softsoa/internal/coalition"
	"softsoa/internal/core"
	"softsoa/internal/sccp"
	"softsoa/internal/semiring"
	"softsoa/internal/soa"
	"softsoa/internal/solver"
	"softsoa/internal/trust"
	"softsoa/internal/workload"
)

// runE10 measures solver scaling on random weighted SCSPs and the
// effect of branch-and-bound pruning.
func runE10() ([]Check, []string) {
	var notes []string
	notes = append(notes,
		"n    d  |  exhaustive nodes      B&B nodes   (pruned %)  lookahead  |  VE tables")
	var cs []Check
	for _, n := range []int{4, 6, 8, 10} {
		p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
			Vars: n, DomainSize: 3, Density: 0.5, Tightness: 0.9, Seed: int64(n),
		})
		if err != nil {
			return []Check{{"workload", "ok", err.Error(), false}}, nil
		}
		ex := solver.Exhaustive(p)
		bb := solver.BranchAndBound(p)
		look := solver.BranchAndBound(p, solver.WithLookahead())
		nop := solver.BranchAndBound(p, solver.WithoutPruning())
		ve := solver.Eliminate(p)
		agree := ex.Blevel == bb.Blevel && ex.Blevel == ve.Blevel &&
			ex.Blevel == nop.Blevel && ex.Blevel == look.Blevel
		cs = append(cs, Check{
			Name:     fmt.Sprintf("n=%d: all solvers agree on blevel", n),
			Paper:    "agree (soundness)",
			Measured: fmt.Sprintf("blevel=%v agree=%v", ex.Blevel, agree),
			OK:       agree,
		})
		cs = append(cs, Check{
			Name:     fmt.Sprintf("n=%d: pruning shrinks the search", n),
			Paper:    "B&B ≤ brute force",
			Measured: fmt.Sprintf("%d ≤ %d", bb.Stats.Nodes, nop.Stats.Nodes),
			OK:       bb.Stats.Nodes <= nop.Stats.Nodes,
		})
		cs = append(cs, Check{
			Name:     fmt.Sprintf("n=%d: lookahead tightens the bound", n),
			Paper:    "lookahead ≤ plain B&B",
			Measured: fmt.Sprintf("%d ≤ %d", look.Stats.Nodes, bb.Stats.Nodes),
			OK:       look.Stats.Nodes <= bb.Stats.Nodes,
		})
		pruneFrac := 100 * (1 - float64(bb.Stats.Nodes)/float64(nop.Stats.Nodes))
		notes = append(notes, fmt.Sprintf(
			"%-4d 3  |  %10d   %12d   (%5.1f%%)   %9d   |  %6d",
			n, ex.Stats.Nodes, bb.Stats.Nodes, pruneFrac, look.Stats.Nodes, ve.Stats.TablesBuilt))
	}
	// Width-1 chain: variable elimination solves sizes enumeration
	// cannot touch.
	chain, err := workload.ChainWeightedSCSP(16, 4, 3)
	if err != nil {
		return []Check{{"workload", "ok", err.Error(), false}}, nil
	}
	start := time.Now()
	ve := solver.Eliminate(chain)
	cs = append(cs, Check{
		Name:     "chain n=16 d=4 (4^16 ≈ 4.3e9 assignments)",
		Paper:    "VE solves in ms",
		Measured: fmt.Sprintf("blevel=%v in %s", ve.Blevel, time.Since(start).Round(time.Millisecond)),
		OK:       ve.Stats.TablesBuilt > 0,
	})
	return cs, notes
}

// runE11 compares optimal and greedy pipeline composition across
// pipeline lengths.
func runE11() ([]Check, []string) {
	var cs []Check
	notes := []string{"stages providers |  optimal  greedy  (gap %)  | opt nodes"}
	for _, stages := range []int{2, 4, 6} {
		reg := soa.NewRegistry()
		params := workload.CatalogParams{
			Stages: stages, ProvidersPerStage: 6, Regions: 3, Seed: int64(stages) * 11,
		}
		if err := workload.CostCatalog(reg, params); err != nil {
			return []Check{{"catalog", "ok", err.Error(), false}}, nil
		}
		comp := broker.NewComposer(reg, broker.LinkPenalty{Cost: 8, Factor: 0.9})
		req := broker.PipelineRequest{
			Client: "bench", Stages: params.StageNames(), Metric: soa.MetricCost,
		}
		_, opt, err := comp.Compose(req)
		if err != nil {
			return []Check{{"compose", "ok", err.Error(), false}}, nil
		}
		_, gre, err := comp.ComposeGreedy(req)
		if err != nil {
			return []Check{{"greedy", "ok", err.Error(), false}}, nil
		}
		cs = append(cs, Check{
			Name:     fmt.Sprintf("k=%d: optimal ≤ greedy total cost", stages),
			Paper:    "optimal dominates",
			Measured: fmt.Sprintf("%.2f ≤ %.2f", opt.Total, gre.Total),
			OK:       opt.Total <= gre.Total,
		})
		gap := 100 * (gre.Total - opt.Total) / opt.Total
		notes = append(notes, fmt.Sprintf("%-6d %-9d |  %7.2f  %6.2f  (%5.1f%%)  | %9d",
			stages, 6, opt.Total, gre.Total, gap, opt.Nodes))
	}
	return cs, notes
}

// runE12 compares the direct partition solver against the paper's
// §6.1 SCSP encoding.
func runE12() ([]Check, []string) {
	var cs []Check
	notes := []string{"n  |  direct explored   direct time  |  SCSP nodes   SCSP time"}
	for _, n := range []int{3, 4} {
		net := trust.Random(n, 2, int64(n)*7)
		direct := coalition.Exact(net, trust.Min, coalition.WithMaxCoalitions(2))
		encoded, err := coalition.SolveViaSCSP(net, trust.Min, 2)
		if err != nil {
			return []Check{{"encode", "ok", err.Error(), false}}, nil
		}
		cs = append(cs, Check{
			Name:     fmt.Sprintf("n=%d: encodings agree on objective", n),
			Paper:    "equal optima",
			Measured: fmt.Sprintf("direct=%.4f scsp=%.4f", direct.Objective, encoded.Objective),
			OK:       direct.Objective == encoded.Objective,
		})
		notes = append(notes, fmt.Sprintf("%d  |  %15d   %11s  |  %10d   %9s",
			n, direct.Explored, direct.Elapsed.Round(time.Microsecond),
			encoded.Explored, encoded.Elapsed.Round(time.Microsecond)))
	}
	notes = append(notes,
		"the §6.1 encoding searches (2^n)^k assignments against the direct solver's Bell-number partitions;\n"+
			"  the node gap widens with n and the encoding is infeasible past n=4 (powerset tables)")
	return cs, notes
}

// runE13 times the semiring operations.
func runE13() ([]Check, []string) {
	const iters = 2_000_000
	timeOp := func(f func(i int)) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f(i)
		}
		return time.Since(start)
	}
	var notes []string
	notes = append(notes, fmt.Sprintf("%d iterations per op", iters))
	var sink float64
	var bsink semiring.Bitset
	w, f, pr := semiring.Weighted{}, semiring.Fuzzy{}, semiring.Probabilistic{}
	set := semiring.NewSet("a", "b", "c", "d", "e", "f", "g", "h")
	ops := []struct {
		name string
		f    func(i int)
	}{
		{"weighted ×", func(i int) { sink = w.Times(float64(i&7), 3) }},
		{"weighted ÷", func(i int) { sink = w.Div(float64(i&7), 3) }},
		{"fuzzy ×", func(i int) { sink = f.Times(float64(i&7)/8, 0.5) }},
		{"probabilistic ×", func(i int) { sink = pr.Times(float64(i&7)/8, 0.5) }},
		{"set ×", func(i int) { bsink = set.Times(semiring.Bitset(i), semiring.Bitset(i>>1)) }},
	}
	for _, op := range ops {
		d := timeOp(op.f)
		notes = append(notes, fmt.Sprintf("%-16s %6.1f ns/op", op.name, float64(d.Nanoseconds())/iters))
	}
	_ = sink
	_ = bsink
	return []Check{{"microbenchmarks completed", "n/a", "ok", true}}, notes
}

// runE14 measures nmsccp interpreter throughput on a tell/retract
// ping-pong program.
func runE14() ([]Check, []string) {
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("x", core.IntDomain(0, 10))
	c := core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 { return a.Num(x) })
	defs := sccp.Defs[float64]{}
	defs.Declare("pingpong", 0, func([]core.Variable) sccp.Agent[float64] {
		return sccp.Tell[float64]{C: c, Next: sccp.Retract[float64]{C: c, Next: sccp.Call[float64]{Name: "pingpong"}}}
	})
	m := sccp.NewMachine[float64](s, sccp.Call[float64]{Name: "pingpong"}, sccp.WithDefs[float64](defs))
	const fuel = 3000
	start := time.Now()
	status, err := m.Run(fuel)
	elapsed := time.Since(start)
	if err != nil {
		return []Check{{"run", "ok", err.Error(), false}}, nil
	}
	rate := float64(m.Steps()) / elapsed.Seconds()
	return []Check{
			{"interpreter sustains the step budget", "out-of-fuel", status.String(), status.String() == "out-of-fuel"},
		}, []string{
			fmt.Sprintf("%d transitions in %s (%.0f transitions/s)",
				m.Steps(), elapsed.Round(time.Millisecond), rate),
		}
}
