// Package experiments regenerates every experiment recorded in
// EXPERIMENTS.md: the paper-conformance checks E1–E9 (each worked
// example and figure of the DSN 2008 paper) and the scaling/ablation
// studies E10–E14. cmd/experiments is the CLI front-end; the test
// suite runs every experiment and asserts all checks pass.
package experiments

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Check is one asserted row of an experiment: a quantity, the paper's
// claim, the measured value, and whether they agree.
type Check struct {
	// Name describes the quantity.
	Name string
	// Paper is the paper-claimed (or designed-shape) value.
	Paper string
	// Measured is what this implementation produced.
	Measured string
	// OK reports agreement.
	OK bool
}

// Experiment is one reproducible unit.
type Experiment struct {
	// ID is the EXPERIMENTS.md identifier (E1..E14).
	ID string
	// Title summarises the experiment.
	Title string
	// Run executes it, returning checks and free-form table notes.
	Run func() ([]Check, []string)
}

// All returns every experiment in EXPERIMENTS.md order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Fig. 1 — weighted CSP worked example", runE1},
		{"E2", "Fig. 5 — fuzzy SLA agreement", runE2},
		{"E3", "Example 1 — tell and failed negotiation", runE3},
		{"E4", "Example 2 — retract relaxes the store", runE4},
		{"E5", "Example 3 — update refreshes a variable", runE5},
		{"E6", "Fig. 8 — crisp integrity refinement", runE6},
		{"E7", "Fig. 8 — quantitative reliability analysis", runE7},
		{"E8", "Fig. 9/10 — trustworthy coalitions", runE8},
		{"E9", "Fig. 6 — broker protocol over HTTP", runE9},
		{"E10", "Solver scaling and pruning ablation", runE10},
		{"E11", "Composition: optimal vs greedy", runE11},
		{"E12", "Coalition: direct solver vs §6.1 SCSP encoding", runE12},
		{"E13", "Semiring operation microbenchmarks", runE13},
		{"E14", "nmsccp interpreter throughput", runE14},
		{"E15", "Soft arc-consistency propagation ablation", runE15},
		{"E16", "Coalition annealing vs exact", runE16},
		{"E17", "Multi-objective (Pareto) composition", runE17},
	}
}

// Lookup returns the experiment with the given id (case-insensitive).
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// Report runs the selected experiments ("all" or an id) and writes a
// human-readable report to w. It returns the number of failed checks,
// whether any experiment matched the selector, and any write error
// (sticky in the buffered writer, surfaced by the final Flush).
func Report(w io.Writer, selector string) (failed int, matched bool, err error) {
	bw := bufio.NewWriter(w)
	for _, e := range All() {
		if selector != "all" && !strings.EqualFold(selector, e.ID) {
			continue
		}
		matched = true
		fmt.Fprintf(bw, "== %s: %s ==\n", e.ID, e.Title)
		checks, notes := e.Run()
		for _, c := range checks {
			verdict := "PASS"
			if !c.OK {
				verdict = "FAIL"
				failed++
			}
			fmt.Fprintf(bw, "  [%s] %-46s paper: %-18s measured: %s\n",
				verdict, c.Name, c.Paper, c.Measured)
		}
		for _, n := range notes {
			fmt.Fprintf(bw, "  %s\n", n)
		}
		fmt.Fprintln(bw)
	}
	return failed, matched, bw.Flush()
}

func yes(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}
