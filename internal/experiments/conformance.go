package experiments

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"

	"softsoa/internal/broker"
	"softsoa/internal/coalition"
	"softsoa/internal/core"
	"softsoa/internal/integrity"
	"softsoa/internal/sccp"
	"softsoa/internal/semiring"
	"softsoa/internal/soa"
	"softsoa/internal/solver"
	"softsoa/internal/trust"
)

// runE1 reproduces Fig. 1: the weighted CSP whose combined tuples are
// ⟨a,a⟩→11, ⟨a,b⟩→7, ⟨b,a⟩→16, ⟨b,b⟩→16, solution ⟨a⟩→7, ⟨b⟩→16,
// blevel 7.
func runE1() ([]Check, []string) {
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("X", core.LabelDomain("a", "b"))
	y := s.AddVariable("Y", core.LabelDomain("a", "b"))
	p := core.NewProblem(s, x)
	p.Add(
		core.Unary(s, x, map[string]float64{"a": 1, "b": 9}),
		core.Binary(s, x, y, map[[2]string]float64{
			{"a", "a"}: 5, {"a", "b"}: 1, {"b", "a"}: 2, {"b", "b"}: 2,
		}),
		core.Unary(s, y, map[string]float64{"a": 5, "b": 5}),
	)
	comb := p.Combined()
	sol := p.Sol()
	var cs []Check
	for _, tc := range []struct {
		labels [2]string
		want   float64
	}{
		{[2]string{"a", "a"}, 11}, {[2]string{"a", "b"}, 7},
		{[2]string{"b", "a"}, 16}, {[2]string{"b", "b"}, 16},
	} {
		got := comb.AtLabels(tc.labels[0], tc.labels[1])
		cs = append(cs, Check{
			Name:     fmt.Sprintf("combined ⟨%s,%s⟩", tc.labels[0], tc.labels[1]),
			Paper:    fmt.Sprint(tc.want),
			Measured: fmt.Sprint(got),
			OK:       got == tc.want,
		})
	}
	cs = append(cs,
		Check{"solution ⟨a⟩", "7", fmt.Sprint(sol.AtLabels("a")), sol.AtLabels("a") == 7},
		Check{"solution ⟨b⟩", "16", fmt.Sprint(sol.AtLabels("b")), sol.AtLabels("b") == 16},
		Check{"blevel(P)", "7", fmt.Sprint(p.Blevel()), p.Blevel() == 7},
	)
	res := solver.BranchAndBound(p)
	cs = append(cs, Check{
		"best assignment", "X=a, Y=b",
		fmt.Sprintf("X=%s, Y=%s", res.Best[0].Assignment.Label("X"), res.Best[0].Assignment.Label("Y")),
		res.Best[0].Assignment.Label("X") == "a" && res.Best[0].Assignment.Label("Y") == "b",
	})
	return cs, nil
}

// runE2 reproduces Fig. 5: provider and client fuzzy constraints over
// x ∈ [1,9] crossing at preference 0.5.
func runE2() ([]Check, []string) {
	s := core.NewSpace[float64](semiring.Fuzzy{})
	x := s.AddVariable("x", core.IntDomain(1, 9))
	cp := core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 {
		return math.Max(0, math.Min(1, (a.Num(x)-1)/8))
	})
	cc := core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 {
		return math.Max(0, math.Min(1, (9-a.Num(x))/8))
	})
	st := core.NewStore(s)
	st.Tell(cp)
	st.Tell(cc)
	b := st.Blevel()
	return []Check{
		{"agreement blevel (max of min(cp,cc))", "0.5", fmt.Sprint(b), b == 0.5},
	}, nil
}

// negotiationFixture builds the Fig. 7 constraints and sync tokens
// shared by E3–E5.
func negotiationFixture() (*core.Space[float64], map[string]*core.Constraint[float64]) {
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("x", core.IntDomain(0, 10))
	y := s.AddVariable("y", core.IntDomain(0, 10))
	sp1v := s.AddVariable("spv1", core.IntDomain(0, 1))
	sp2v := s.AddVariable("spv2", core.IntDomain(0, 1))
	sr := semiring.Weighted{}
	flag := func(v core.Variable) *core.Constraint[float64] {
		return core.NewConstraint(s, []core.Variable{v}, func(a core.Assignment) float64 {
			if a.Num(v) == 1 {
				return sr.One()
			}
			return sr.Zero()
		})
	}
	return s, map[string]*core.Constraint[float64]{
		"c1":  core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 { return a.Num(x) + 3 }),
		"c2":  core.NewConstraint(s, []core.Variable{y}, func(a core.Assignment) float64 { return a.Num(y) + 1 }),
		"c3":  core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 { return 2 * a.Num(x) }),
		"c4":  core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 { return a.Num(x) + 5 }),
		"sp1": flag(sp1v),
		"sp2": flag(sp2v),
	}
}

// runE3 reproduces Example 1: merged policies have blevel 5, P2's
// interval [4,1] excludes it, so the negotiation deadlocks.
func runE3() ([]Check, []string) {
	s, cs := negotiationFixture()
	sr := semiring.Weighted{}
	p1 := sccp.Tell[float64]{C: cs["c4"], Next: sccp.Tell[float64]{C: cs["sp2"], Next: sccp.Ask[float64]{
		C: cs["sp1"], Check: sccp.Between[float64](sr, 10, 2), Next: sccp.Success[float64]{},
	}}}
	p2 := sccp.Tell[float64]{C: cs["c3"], Next: sccp.Tell[float64]{C: cs["sp1"], Next: sccp.Ask[float64]{
		C: cs["sp2"], Check: sccp.Between[float64](sr, 4, 1), Next: sccp.Success[float64]{},
	}}}
	m := sccp.NewMachine(s, sccp.Par[float64](p1, p2))
	status, err := m.Run(200)
	if err != nil {
		return []Check{{"run", "no error", err.Error(), false}}, nil
	}
	b := m.Store().Blevel()
	return []Check{
		{"final store σ⇓∅ (c4⊗c3 ≡ 3x+5)", "5", fmt.Sprint(b), b == 5},
		{"P2 succeeds (5 ∈ [4,1]?)", "no — agreement fails", status.String(), status == sccp.Stuck},
	}, nil
}

// runE4 reproduces Example 2: retracting c1 leaves σ ≡ 2x+2 with
// blevel 2 and both agents succeed.
func runE4() ([]Check, []string) {
	s, cs := negotiationFixture()
	sr := semiring.Weighted{}
	p1 := sccp.Tell[float64]{C: cs["c4"], Next: sccp.Tell[float64]{C: cs["sp2"], Next: sccp.Ask[float64]{
		C: cs["sp1"], Check: sccp.Between[float64](sr, 10, 2), Next: sccp.Retract[float64]{
			C: cs["c1"], Check: sccp.Between[float64](sr, 10, 2), Next: sccp.Success[float64]{},
		},
	}}}
	p2 := sccp.Tell[float64]{C: cs["c3"], Next: sccp.Tell[float64]{C: cs["sp1"], Next: sccp.Ask[float64]{
		C: cs["sp2"], Check: sccp.Between[float64](sr, 4, 1), Next: sccp.Success[float64]{},
	}}}
	m := sccp.NewMachine(s, sccp.Par[float64](p1, p2))
	status, err := m.Run(300)
	if err != nil {
		return []Check{{"run", "no error", err.Error(), false}}, nil
	}
	b := m.Store().Blevel()
	sx := core.ProjectTo(m.Store().Constraint(), "x")
	poly := true
	for v := 0; v <= 10; v++ {
		if sx.AtLabels(fmt.Sprint(v)) != 2*float64(v)+2 {
			poly = false
		}
	}
	return []Check{
		{"both agents succeed", "yes", status.String(), status == sccp.Succeeded},
		{"final store polynomial", "2x+2", yes(poly) + " (2x+2)", poly},
		{"final σ⇓∅", "2", fmt.Sprint(b), b == 2},
	}, nil
}

// runE5 reproduces Example 3: tell(c1) then update_{x}(c2) leaves the
// store y+4.
func runE5() ([]Check, []string) {
	s, cs := negotiationFixture()
	m := sccp.NewMachine(s, sccp.Tell[float64]{C: cs["c1"], Next: sccp.Update[float64]{
		Vars: []core.Variable{"x"}, C: cs["c2"], Next: sccp.Success[float64]{},
	}})
	status, err := m.Run(50)
	if err != nil {
		return []Check{{"run", "no error", err.Error(), false}}, nil
	}
	sy := core.ProjectTo(m.Store().Constraint(), "y")
	poly := true
	for v := 0; v <= 10; v++ {
		if sy.AtLabels(fmt.Sprint(v)) != float64(v)+4 {
			poly = false
		}
	}
	b := m.Store().Blevel()
	return []Check{
		{"agent succeeds", "yes", status.String(), status == sccp.Succeeded},
		{"final store polynomial", "y+4", yes(poly) + " (y+4)", poly},
		{"final σ⇓∅", "4", fmt.Sprint(b), b == 4},
	}, nil
}

// runE6 reproduces the crisp Fig. 8 analysis: Imp1 refines Memory,
// Imp2 (REDF failed to true) does not.
func runE6() ([]Check, []string) {
	s := integrity.NewCrispPhotoSpace()
	sys := integrity.CrispPhotoSystem(s)
	mem := integrity.CrispMemoryRequirement(s)
	iface := []core.Variable{integrity.PhotoVars.Incomp, integrity.PhotoVars.Outcomp}
	imp1 := sys.Upholds(mem, iface...)
	failed := sys.Clone()
	if err := failed.FailModule("REDF"); err != nil {
		return []Check{{"fail REDF", "ok", err.Error(), false}}, nil
	}
	imp2 := failed.Upholds(mem, iface...)
	return []Check{
		{"Imp1⇓{incomp,outcomp} ⊑ Memory", "holds", yes(imp1), imp1},
		{"Imp2⇓{incomp,outcomp} ⊑ Memory (REDF ≡ true)", "fails", yes(imp2), !imp2},
	}, nil
}

// runE7 reproduces the quantitative Fig. 8 analysis: c1(4096,1024) =
// 0.96 and Imp3 meets a 0.5 minimum reliability requirement.
func runE7() ([]Check, []string) {
	s := integrity.NewQuantPhotoSpace()
	c1 := integrity.BWFReliability(s)
	v := c1.AtLabels("4096", "1024")
	sys := integrity.QuantPhotoSystem(s)
	meets := sys.MeetsMin(integrity.MemoryProbRequirement(s, 0.5),
		integrity.PhotoVars.Outcomp, integrity.PhotoVars.Incomp)
	tooHard := sys.MeetsMin(integrity.MemoryProbRequirement(s, 0.999),
		integrity.PhotoVars.Outcomp, integrity.PhotoVars.Incomp)
	rel := sys.Reliability()
	return []Check{
		{"c1(outcomp=4096, bwbyte=1024)", "0.96", fmt.Sprint(v), math.Abs(v-0.96) < 1e-12},
		{"MemoryProb(0.5) ⊑ Imp3", "holds", yes(meets), meets},
		{"MemoryProb(0.999) ⊑ Imp3", "fails", yes(tooHard), !tooHard},
	}, []string{fmt.Sprintf("best-case composed reliability (blevel) = %.4f", rel)}
}

// runE8 reproduces the coalition results: Fig. 9's two communities
// are the optimal stable 2-partition; Fig. 10's partition blocks.
func runE8() ([]Check, []string) {
	fig9 := coalition.Fig9Network()
	res := coalition.Exact(fig9, trust.Min, coalition.WithMaxCoalitions(2))
	wantA := semiring.BitsetOf(0, 1, 2, 3)
	wantB := semiring.BitsetOf(4, 5, 6)
	communities := len(res.Partition) == 2 &&
		((res.Partition[0] == wantA && res.Partition[1] == wantB) ||
			(res.Partition[0] == wantB && res.Partition[1] == wantA))

	fig10 := coalition.Fig10Network()
	c1 := semiring.BitsetOf(0, 1, 2)
	c2 := semiring.BitsetOf(3, 4, 5, 6)
	blocking := coalition.Blocking(fig10, c1, c2, trust.Avg)
	unstable := !coalition.Stable(fig10, coalition.Partition{c1, c2}, trust.Avg)
	repaired := coalition.Stable(fig10,
		coalition.Partition{c1.With(3), c2.Without(3)}, trust.Avg)
	return []Check{
		{"Fig. 9 best stable 2-partition", "{x1..x4},{x5..x7}", res.String(), communities && res.Stable},
		{"Fig. 10 (C1,C2) blocking (Def. 4)", "blocking", yes(blocking), blocking},
		{"Fig. 10 partition stable?", "no", yes(!unstable), unstable},
		{"partition with x4 moved to C1 stable?", "yes", yes(repaired), repaired},
	}, nil
}

// runE9 walks the Fig. 6 broker protocol over HTTP: publish,
// discover, negotiate, sign.
func runE9() ([]Check, []string) {
	srv := broker.NewServer(broker.DefaultLinkPenalty)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := broker.NewClient(ts.URL, ts.Client())

	pub := func(provider string, base, per float64) error {
		return client.Publish(context.Background(), &soa.Document{
			Service: "failmgmt", Provider: provider, Region: "eu",
			Attributes: []soa.Attribute{{
				Name: "hours", Metric: soa.MetricCost,
				Base: base, PerUnit: per, Resource: "failures", MaxUnits: 10,
			}},
		})
	}
	if err := pub("p1", 2, 0); err != nil {
		return []Check{{"publish", "ok", err.Error(), false}}, nil
	}
	if err := pub("p2", 7, 1); err != nil {
		return []Check{{"publish", "ok", err.Error(), false}}, nil
	}
	docs, err := client.Discover(context.Background(), "failmgmt")
	if err != nil {
		return []Check{{"discover", "ok", err.Error(), false}}, nil
	}
	lower, upper := 4.0, 1.0
	sla, err := client.Negotiate(context.Background(), broker.NegotiateRequest{
		Service: "failmgmt", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
		Lower: &lower, Upper: &upper,
	})
	if err != nil {
		return []Check{{"negotiate", "SLA", err.Error(), false}}, nil
	}
	return []Check{
		{"providers discovered", "2", fmt.Sprint(len(docs)), len(docs) == 2},
		{"SLA provider (best of p1/p2)", "p1", sla.Providers[0], sla.Providers[0] == "p1"},
		{"agreed level ∈ [4,1]", "2", fmt.Sprint(sla.AgreedLevel), sla.AgreedLevel == 2},
	}, nil
}
