package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsPass runs every experiment in EXPERIMENTS.md and
// asserts every check agrees with the paper — the repository-level
// conformance gate.
func TestAllExperimentsPass(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			checks, _ := e.Run()
			if len(checks) == 0 {
				t.Fatalf("%s produced no checks", e.ID)
			}
			for _, c := range checks {
				if !c.OK {
					t.Errorf("%s: %s — paper %q, measured %q", e.ID, c.Name, c.Paper, c.Measured)
				}
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("e7"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("unknown id should not resolve")
	}
}

func TestReport(t *testing.T) {
	var sb strings.Builder
	failed, matched, err := Report(&sb, "E1")
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if !matched {
		t.Fatal("E1 should match")
	}
	if failed != 0 {
		t.Fatalf("E1 reported %d failures:\n%s", failed, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"E1:", "PASS", "blevel(P)", "measured: 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if _, matched, _ := Report(&sb, "nope"); matched {
		t.Error("unknown selector should not match")
	}
}

func TestAllHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete experiment", e.ID)
		}
	}
	if len(seen) != 17 {
		t.Errorf("expected 17 experiments, got %d", len(seen))
	}
}
