package trust

import (
	"testing"
	"testing/quick"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

func TestNetworkBasics(t *testing.T) {
	n := NewNetwork("a", "b", "c")
	if n.Size() != 3 {
		t.Fatalf("size = %d", n.Size())
	}
	if got := n.Trust(0, 0); got != 1 {
		t.Errorf("self-trust = %v, want 1", got)
	}
	if err := n.SetByName("a", "b", 0.7); err != nil {
		t.Fatal(err)
	}
	i, _ := n.Index("a")
	j, _ := n.Index("b")
	if got := n.Trust(i, j); got != 0.7 {
		t.Errorf("t(a,b) = %v", got)
	}
	if got := n.Trust(j, i); got != 0 {
		t.Errorf("t(b,a) = %v, want 0 (asymmetric)", got)
	}
	members := n.Members()
	if len(members) != 3 || members[0] != "a" {
		t.Errorf("members = %v", members)
	}
}

func TestNetworkErrors(t *testing.T) {
	n := NewNetwork("a", "b")
	if err := n.Set(0, 5, 0.5); err == nil {
		t.Error("out-of-range index should fail")
	}
	if err := n.Set(0, 1, 1.5); err == nil {
		t.Error("score above 1 should fail")
	}
	if err := n.Set(0, 1, -0.1); err == nil {
		t.Error("negative score should fail")
	}
	if err := n.SetByName("a", "zz", 0.5); err == nil {
		t.Error("unknown member should fail")
	}
	if err := n.SetByName("zz", "a", 0.5); err == nil {
		t.Error("unknown member should fail")
	}
	if _, err := n.Index("zz"); err == nil {
		t.Error("unknown index should fail")
	}
}

func TestNetworkPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":     func() { NewNetwork() },
		"duplicate": func() { NewNetwork("a", "a") },
		"zero size": func() { Random(0, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestComposers(t *testing.T) {
	vals := []float64{0.2, 0.8, 0.5}
	if got := Min.Compose(vals); got != 0.2 {
		t.Errorf("min = %v", got)
	}
	if got := Max.Compose(vals); got != 0.8 {
		t.Errorf("max = %v", got)
	}
	if got := Avg.Compose(vals); got != 0.5 {
		t.Errorf("avg = %v", got)
	}
	if got := Product.Compose([]float64{0.5, 0.5}); got != 0.25 {
		t.Errorf("product = %v", got)
	}
	for _, c := range []Composer{Min, Max, Avg, Product} {
		if got := c.Compose(nil); got != 0 {
			t.Errorf("%s of nothing = %v, want 0", c.Name, got)
		}
	}
}

func TestRandomCommunitiesStructure(t *testing.T) {
	n := Random(8, 2, 42)
	// Members 0..3 and 4..7 are communities: intra ≥ 0.6, inter < 0.4.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i == j {
				continue
			}
			same := (i < 4) == (j < 4)
			v := n.Trust(i, j)
			if same && v < 0.6 {
				t.Errorf("intra t(%d,%d) = %v < 0.6", i, j, v)
			}
			if !same && v >= 0.4 {
				t.Errorf("inter t(%d,%d) = %v ≥ 0.4", i, j, v)
			}
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(6, 1, 7)
	b := Random(6, 1, 7)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if a.Trust(i, j) != b.Trust(i, j) {
				t.Fatal("same seed must give same network")
			}
		}
	}
}

func TestClosureMaxMinPaths(t *testing.T) {
	n := NewNetwork("a", "b", "c")
	mustSet := func(f, to string, v float64) {
		if err := n.SetByName(f, to, v); err != nil {
			t.Fatal(err)
		}
	}
	mustSet("a", "b", 0.9)
	mustSet("b", "c", 0.7)
	mustSet("a", "c", 0.2)
	cl := n.Closure()
	// a→c directly 0.2, via b min(0.9,0.7)=0.7: closure picks 0.7.
	ai, _ := cl.Index("a")
	ci, _ := cl.Index("c")
	if got := cl.Trust(ai, ci); got != 0.7 {
		t.Errorf("closure t(a,c) = %v, want 0.7", got)
	}
	// Original is untouched.
	if got := n.Trust(ai, ci); got != 0.2 {
		t.Errorf("original t(a,c) = %v, want 0.2", got)
	}
}

func TestQuickClosureProperties(t *testing.T) {
	f := func(seed int64) bool {
		n := Random(5, 1, seed)
		cl := n.Closure()
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				// Closure never decreases trust, stays in [0,1].
				if cl.Trust(i, j) < n.Trust(i, j) || cl.Trust(i, j) > 1 {
					return false
				}
			}
		}
		// Idempotence: closing twice changes nothing.
		cl2 := cl.Closure()
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				if cl2.Trust(i, j) != cl.Trust(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestToConstraint(t *testing.T) {
	n := NewNetwork("a", "b")
	if err := n.SetByName("a", "b", 0.4); err != nil {
		t.Fatal(err)
	}
	s := core.NewSpace[float64](semiring.Fuzzy{})
	from := s.AddVariable("from", core.IntDomain(0, 1))
	to := s.AddVariable("to", core.IntDomain(0, 1))
	c := n.ToConstraint(s, from, to)
	if got := c.AtLabels("0", "1"); got != 0.4 {
		t.Errorf("constraint(a,b) = %v, want 0.4", got)
	}
	if got := c.AtLabels("1", "1"); got != 1 {
		t.Errorf("constraint(b,b) = %v, want 1 (self-trust)", got)
	}
}
