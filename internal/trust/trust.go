// Package trust models directed weighted trust networks among
// service components (Fig. 9 of the paper): t(xi, xj) is the trust
// score xi has collected on xj from its own direct experiences, in
// [0,1]. The package provides the ◦ composition operators used to
// aggregate 1-to-1 relationships into coalition trustworthiness
// (Def. 3) and a semiring-based transitive closure for indirect
// trust, after the multitrust propagation the paper cites.
package trust

import (
	"fmt"
	"math/rand"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

// Network is a complete directed trust network over n members. The
// zero value is unusable; construct with NewNetwork or Random.
type Network struct {
	names []string
	t     [][]float64
	index map[string]int
}

// NewNetwork returns a network over the named members with all trust
// scores initialised to zero (no experience). Self-trust t(i,i)
// defaults to 1. It panics on empty or duplicate names, which would
// make the network meaningless.
func NewNetwork(names ...string) *Network {
	if len(names) == 0 {
		panic("trust: empty network")
	}
	idx := make(map[string]int, len(names))
	for i, n := range names {
		if _, dup := idx[n]; dup {
			panic(fmt.Sprintf("trust: duplicate member %q", n))
		}
		idx[n] = i
	}
	t := make([][]float64, len(names))
	for i := range t {
		t[i] = make([]float64, len(names))
		t[i][i] = 1
	}
	return &Network{names: append([]string(nil), names...), t: t, index: idx}
}

// Members returns the member names in index order.
func (n *Network) Members() []string { return append([]string(nil), n.names...) }

// Size returns the number of members.
func (n *Network) Size() int { return len(n.names) }

// Index returns the index of a named member.
func (n *Network) Index(name string) (int, error) {
	i, ok := n.index[name]
	if !ok {
		return 0, fmt.Errorf("trust: unknown member %q", name)
	}
	return i, nil
}

// Set records the trust score of i in j. Scores live in [0,1].
func (n *Network) Set(i, j int, v float64) error {
	if i < 0 || i >= len(n.names) || j < 0 || j >= len(n.names) {
		return fmt.Errorf("trust: member index out of range (%d,%d)", i, j)
	}
	if v < 0 || v > 1 {
		return fmt.Errorf("trust: score %v outside [0,1]", v)
	}
	n.t[i][j] = v
	return nil
}

// SetByName is Set with member names.
func (n *Network) SetByName(from, to string, v float64) error {
	i, err := n.Index(from)
	if err != nil {
		return err
	}
	j, err := n.Index(to)
	if err != nil {
		return err
	}
	return n.Set(i, j, v)
}

// Trust returns t(i, j): i's direct trust in j.
func (n *Network) Trust(i, j int) float64 { return n.t[i][j] }

// Random returns a seeded random network: intra-community trust drawn
// from [0.6, 1.0), inter-community from [0.0, 0.4), with members
// split evenly into the given number of communities. communities ≤ 1
// draws all scores uniformly from [0,1).
func Random(size int, communities int, seed int64) *Network {
	if size <= 0 {
		panic("trust: non-positive network size")
	}
	names := make([]string, size)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i+1)
	}
	n := NewNetwork(names...)
	rng := rand.New(rand.NewSource(seed))
	comm := func(i int) int {
		if communities <= 1 {
			return 0
		}
		return i * communities / size
	}
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			if i == j {
				continue
			}
			var v float64
			switch {
			case communities <= 1:
				v = rng.Float64()
			case comm(i) == comm(j):
				v = 0.6 + 0.4*rng.Float64()
			default:
				v = 0.4 * rng.Float64()
			}
			n.t[i][j] = v
		}
	}
	return n
}

// Composer is the ◦ operator of Def. 3: it aggregates a multiset of
// 1-to-1 trust scores into one value. The composition of no scores is
// 0 (no evidence, no trust).
type Composer struct {
	// Name identifies the operator ("min", "avg", "max", "product").
	Name string
	fn   func(vals []float64) float64
}

// Compose applies the operator.
func (c Composer) Compose(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	return c.fn(vals)
}

// Min is the pessimistic ◦: a coalition is only as trustworthy as its
// weakest relationship.
var Min = Composer{Name: "min", fn: func(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}}

// Max is the optimistic ◦ named in the paper.
var Max = Composer{Name: "max", fn: func(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}}

// Avg is the arithmetic-mean ◦ named in the paper.
var Avg = Composer{Name: "avg", fn: func(vs []float64) float64 {
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}}

// Product composes multiplicatively, reading scores as independent
// success probabilities.
var Product = Composer{Name: "product", fn: func(vs []float64) float64 {
	p := 1.0
	for _, v := range vs {
		p *= v
	}
	return p
}}

// Closure returns the indirect-trust network: t*(i,j) is the best
// trust obtainable through any chain of recommendations, computed as
// the max-min (fuzzy semiring) path closure à la Floyd–Warshall. The
// direct scores are kept when stronger.
func (n *Network) Closure() *Network {
	size := n.Size()
	out := NewNetwork(n.names...)
	for i := 0; i < size; i++ {
		copy(out.t[i], n.t[i])
	}
	for k := 0; k < size; k++ {
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				via := out.t[i][k]
				if out.t[k][j] < via {
					via = out.t[k][j] // min along the chain
				}
				if via > out.t[i][j] {
					out.t[i][j] = via // max over chains
				}
			}
		}
	}
	return out
}

// ToConstraint renders the network as a fuzzy soft constraint over a
// pair of member-index variables, so trust can participate directly
// in SCSPs ("by changing the semiring structure we can represent
// different trust metrics").
func (n *Network) ToConstraint(s *core.Space[float64], from, to core.Variable) *core.Constraint[float64] {
	return core.NewConstraint(s, []core.Variable{from, to}, func(a core.Assignment) float64 {
		i, j := int(a.Num(from)), int(a.Num(to))
		if i < 0 || i >= n.Size() || j < 0 || j >= n.Size() {
			return semiring.Fuzzy{}.Zero()
		}
		return n.t[i][j]
	})
}
