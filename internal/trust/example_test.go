package trust_test

import (
	"fmt"

	"softsoa/internal/trust"
)

// Direct trust scores compose into coalition trustworthiness through
// the ◦ operators; the max-min closure derives indirect trust along
// recommendation chains.
func ExampleNetwork_Closure() {
	n := trust.NewNetwork("alice", "bob", "carol")
	_ = n.SetByName("alice", "bob", 0.9)
	_ = n.SetByName("bob", "carol", 0.7)
	_ = n.SetByName("alice", "carol", 0.2)
	cl := n.Closure()
	a, _ := cl.Index("alice")
	c, _ := cl.Index("carol")
	fmt.Printf("direct:   %.1f\n", n.Trust(a, c))
	fmt.Printf("indirect: %.1f (via bob, max-min)\n", cl.Trust(a, c))
	// Output:
	// direct:   0.2
	// indirect: 0.7 (via bob, max-min)
}

func ExampleComposer() {
	scores := []float64{0.9, 0.6, 0.8}
	fmt.Println("min:", trust.Min.Compose(scores))
	fmt.Println("avg:", trust.Avg.Compose(scores))
	fmt.Println("max:", trust.Max.Compose(scores))
	// Output:
	// min: 0.6
	// avg: 0.7666666666666666
	// max: 0.9
}
