// Photoediting: the federated photo-editing pipeline of Fig. 8 —
// integrity as refinement. The crisp analysis shows the module
// policies uphold the client's Memory requirement, and that the
// guarantee collapses when the red filter becomes unreliable; the
// quantitative analysis measures composed reliability and picks the
// best implementation.
package main

import (
	"fmt"
	"log"

	"softsoa/internal/core"
	"softsoa/internal/integrity"
)

func main() {
	iface := []core.Variable{integrity.PhotoVars.Incomp, integrity.PhotoVars.Outcomp}

	// --- Crisp analysis (Classical semiring) ---
	cs := integrity.NewCrispPhotoSpace()
	sys := integrity.CrispPhotoSystem(cs)
	mem := integrity.CrispMemoryRequirement(cs)

	fmt.Println("federated system modules:")
	for _, m := range sys.Modules() {
		fmt.Printf("  %-6s over %v\n", m.Name, m.Policy.Scope())
	}
	fmt.Printf("\nImp1 ⇓ {incomp,outcomp} ⊑ Memory?  %v  (paper: holds)\n",
		sys.Upholds(mem, iface...))

	// Inject the paper's failure: REDF "could take on any behaviour".
	broken := sys.Clone()
	if err := broken.FailModule("REDF"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after REDF ≡ true: Imp2 ⊑ Memory?   %v  (paper: fails)\n",
		broken.Upholds(mem, iface...))

	// --- Quantitative analysis (Probabilistic semiring) ---
	qs := integrity.NewQuantPhotoSpace()
	qsys := integrity.QuantPhotoSystem(qs)
	c1 := integrity.BWFReliability(qs)
	fmt.Printf("\nc1(outcomp=4096KB, bwbyte=1024KB) = %.2f  (paper: 0.96)\n",
		c1.AtLabels("4096", "1024"))
	fmt.Printf("best-case composed reliability (blevel of Imp3): %.4f\n", qsys.Reliability())

	for _, min := range []float64{0.5, 0.9, 0.999} {
		req := integrity.MemoryProbRequirement(qs, min)
		fmt.Printf("Imp3 meets a %.3f minimum reliability? %v\n",
			min, qsys.MeetsMin(req, integrity.PhotoVars.Outcomp, integrity.PhotoVars.Incomp))
	}

	// Choose the most reliable implementation among alternatives.
	flaky := core.NewConstraint(qs,
		[]core.Variable{integrity.PhotoVars.Bwbyte, integrity.PhotoVars.Redbyte},
		func(a core.Assignment) float64 {
			if a.Num(integrity.PhotoVars.Redbyte) > a.Num(integrity.PhotoVars.Bwbyte) {
				return 0
			}
			return 0.5
		})
	choice, level, ok := qsys.BestImplementation(
		[]integrity.Alternative[float64]{
			{Module: "REDF", Name: "standard", Policy: integrity.REDFReliability(qs)},
			{Module: "REDF", Name: "discount", Policy: flaky},
		},
		integrity.MemoryProbRequirement(qs, 0.4),
		integrity.PhotoVars.Outcomp, integrity.PhotoVars.Incomp,
	)
	if !ok {
		log.Fatal("no feasible implementation")
	}
	fmt.Printf("\nbest implementation choice: %s/%s at reliability %.4f\n",
		choice[0].Module, choice[0].Name, level)
}
