// Composition: the full Fig. 6 broker protocol over HTTP. The example
// starts a broker daemon in-process, publishes QoS documents for the
// photo-editing pipeline stages (red filter, black-and-white filter,
// compression) across two regions, negotiates a single-service SLA,
// and then asks the broker to bind the whole pipeline — comparing the
// optimal composition against the greedy baseline.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"softsoa/internal/broker"
	"softsoa/internal/soa"
)

func main() {
	// An in-process broker daemon; cmd/brokerd serves the same
	// handler on a real port.
	srv := broker.NewServer(broker.LinkPenalty{Cost: 5, Factor: 0.9})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := broker.NewClient(ts.URL, ts.Client())
	fmt.Printf("broker listening at %s\n\n", ts.URL)

	// Providers publish QoS documents (step: publication).
	docs := []*soa.Document{
		doc("red-filter", "lumiere", "eu", 6, 0.5),
		doc("red-filter", "pixelino", "us", 5, 0.4),
		doc("bw-filter", "lumiere", "eu", 4, 0.3),
		doc("bw-filter", "grayscale-inc", "us", 4, 0.2),
		doc("compress", "zipit", "eu", 3, 0.1),
	}
	for _, d := range docs {
		if err := client.Publish(context.Background(), d); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published %-14s by %-14s region %s\n", d.Service, d.Provider, d.Region)
	}

	// Discovery (step: discovery).
	found, err := client.Discover(context.Background(), "red-filter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscovered %d providers for red-filter\n", len(found))

	// Single-service negotiation (steps: negotiation + binding).
	lower := 12.0
	sla, err := client.Negotiate(context.Background(), broker.NegotiateRequest{
		Service: "red-filter",
		Client:  "photo-shop",
		Metric:  soa.MetricCost,
		Requirement: soa.Attribute{
			Name: "budget", Metric: soa.MetricCost,
			Base: 1, PerUnit: 0.5, Resource: "load", MaxUnits: 5,
		},
		Lower: &lower,
	})
	if err != nil {
		log.Fatal(err)
	}
	xmlOut, err := sla.Render()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnegotiated SLA:\n%s\n", xmlOut)

	// Pipeline composition: optimal vs greedy.
	pipeline := broker.ComposeRequest{
		Client: "photo-shop",
		Metric: soa.MetricCost,
		Stages: []string{"red-filter", "bw-filter", "compress"},
	}
	opt, err := client.Compose(context.Background(), pipeline)
	if err != nil {
		log.Fatal(err)
	}
	pipeline.Greedy = true
	gre, err := client.Compose(context.Background(), pipeline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npipeline red→bw→compress over regions {eu, us} (cross-region hop costs 5):\n")
	fmt.Printf("  optimal (branch & bound): %v  total cost %.2f\n", opt.Providers, opt.AgreedLevel)
	fmt.Printf("  greedy baseline:          %v  total cost %.2f\n", gre.Providers, gre.AgreedLevel)
	if gre.AgreedLevel > opt.AgreedLevel {
		fmt.Printf("  the greedy stage-local choice pays %.2f extra in link penalties\n",
			gre.AgreedLevel-opt.AgreedLevel)
	}
}

func doc(service, provider, region string, base, perUnit float64) *soa.Document {
	return &soa.Document{
		Service:  service,
		Provider: provider,
		Region:   region,
		Attributes: []soa.Attribute{{
			Name: "fee", Metric: soa.MetricCost,
			Base: base, PerUnit: perUnit, Resource: "load", MaxUnits: 5,
		}},
	}
}
