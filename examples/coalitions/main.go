// Coalitions: trustworthy coalition formation over the Fig. 9 trust
// network — the orchestrator partitions seven service components into
// two pools maximising the minimum coalition trustworthiness under
// the Def. 4 stability condition, and the Fig. 10 blocking pair is
// detected and repaired.
package main

import (
	"fmt"

	"softsoa/internal/coalition"
	"softsoa/internal/semiring"
	"softsoa/internal/trust"
)

func main() {
	net := coalition.Fig9Network()
	members := net.Members()
	fmt.Printf("trust network over %v\n", members)
	fmt.Println("direct trust (rows judge columns):")
	for i := range members {
		fmt.Printf("  %s:", members[i])
		for j := range members {
			fmt.Printf(" %.2f", net.Trust(i, j))
		}
		fmt.Println()
	}

	for _, comp := range []trust.Composer{trust.Min, trust.Avg} {
		res := coalition.Exact(net, comp, coalition.WithMaxCoalitions(2))
		fmt.Printf("\n◦ = %s: best stable 2-partition: %s\n", comp.Name, res)
		for _, c := range res.Partition {
			names := make([]string, 0, c.Len())
			for _, i := range c.Elems() {
				names = append(names, members[i])
			}
			fmt.Printf("  coalition %v  T(C) = %.4f\n",
				names, coalition.Trustworthiness(net, c, comp))
		}
		greedy := coalition.Greedy(net, comp, coalition.WithMaxCoalitions(2))
		fmt.Printf("  greedy baseline: objective %.4f (stable: %v)\n",
			greedy.Objective, greedy.Stable)
	}

	// Fig. 10: a blocking pair and its repair.
	fig10 := coalition.Fig10Network()
	c1 := semiring.BitsetOf(0, 1, 2)
	c2 := semiring.BitsetOf(3, 4, 5, 6)
	fmt.Printf("\nFig. 10 scenario: C1=%v C2=%v (◦ = avg)\n", c1.Elems(), c2.Elems())
	fmt.Printf("  blocking(C1, C2)? %v — x4 prefers C1 and T(C1∪x4)=%.4f > T(C1)=%.4f\n",
		coalition.Blocking(fig10, c1, c2, trust.Avg),
		coalition.Trustworthiness(fig10, c1.With(3), trust.Avg),
		coalition.Trustworthiness(fig10, c1, trust.Avg))
	fmt.Printf("  partition {C1, C2} stable? %v\n",
		coalition.Stable(fig10, coalition.Partition{c1, c2}, trust.Avg))
	moved := coalition.Partition{c1.With(3), c2.Without(3)}
	fmt.Printf("  after moving x4 into C1: stable? %v\n",
		coalition.Stable(fig10, moved, trust.Avg))

	// Indirect trust via the fuzzy (max-min) closure.
	cl := fig10.Closure()
	//lint:ignore errcheck example code; x4 is a member of the Fig. 10 network by construction
	i4, _ := cl.Index("x4")
	//lint:ignore errcheck example code; x7 is a member of the Fig. 10 network by construction
	i7, _ := cl.Index("x7")
	fmt.Printf("\nindirect trust x4→x7: direct %.2f, via recommendation chains %.2f\n",
		fig10.Trust(i4, i7), cl.Trust(i4, i7))
}
