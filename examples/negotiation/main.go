// Negotiation: the paper's Examples 1–3 (Sec. 4.1) run end to end in
// the nmsccp surface syntax — two providers merging their
// failure-management policies into an SLA, first failing (Example 1),
// then succeeding after a retract relaxes the store (Example 2), and
// finally rewriting a policy with update (Example 3).
package main

import (
	"fmt"
	"log"

	"softsoa/internal/core"
	"softsoa/internal/sccp"
)

const example1 = `
# Example 1: P1's policy c4 = x+5, P2's policy c3 = 2x.
# x counts the failures to manage; preference is hours spent.
semiring weighted.
var x in 0..10.
var spv1 in 0..1.
var spv2 in 0..1.

p1() :: tell(x + 5) -> tell(spv2 == 1) -> ask(spv1 == 1)->[10,2] success.
p2() :: tell(2 * x) -> tell(spv1 == 1) -> ask(spv2 == 1)->[4,1] success.

main :: p1() || p2().
`

const example2 = `
# Example 2: as Example 1, but P1 then retracts c1 = x+3, relaxing
# the merged store to 2x+2 — now inside both intervals.
semiring weighted.
var x in 0..10.
var spv1 in 0..1.
var spv2 in 0..1.

p1() :: tell(x + 5) -> tell(spv2 == 1) ->
        ask(spv1 == 1)->[10,2] retract(x + 3)->[10,2] success.
p2() :: tell(2 * x) -> tell(spv1 == 1) -> ask(spv2 == 1)->[4,1] success.

main :: p1() || p2().
`

const example3 = `
# Example 3: update{x} refreshes x; the new policy depends only on
# the number of reboots y. Final store: y + 4.
semiring weighted.
var x in 0..10.
var y in 0..10.

main :: tell(x + 3) -> update{x}(y + 1) -> success.
`

func run(title, src string, project core.Variable) {
	fmt.Printf("=== %s ===\n", title)
	compiled, err := sccp.ParseAndCompile(src)
	if err != nil {
		log.Fatalf("negotiation: %v", err)
	}
	m := compiled.NewMachine()
	status, err := m.Run(300)
	if err != nil {
		log.Fatalf("negotiation: %v", err)
	}
	for _, ev := range m.Trace() {
		fmt.Printf("  step %-2d %-26s σ⇓∅ = %s\n", ev.Step, ev.Rule,
			compiled.Semiring.Format(ev.Blevel))
	}
	fmt.Printf("  status: %s, final consistency: %s\n",
		status, compiled.Semiring.Format(m.Store().Blevel()))
	if status == sccp.Stuck {
		fmt.Printf("  blocked: %s\n", m.Agent())
	}
	if project != "" {
		proj := core.ProjectTo(m.Store().Constraint(), project)
		fmt.Printf("  store over %s: ", project)
		shown := 0
		proj.ForEach(func(a core.Assignment, v float64) {
			if shown < 5 {
				fmt.Printf("%s=%s→%s ", project, a.Label(project), compiled.Semiring.Format(v))
			}
			shown++
		})
		fmt.Println("…")
	}
	fmt.Println()
}

func main() {
	run("Example 1: tell + negotiation (fails: blevel 5 ∉ [4,1])", example1, "x")
	run("Example 2: retract relaxes to 2x+2 (succeeds at blevel 2)", example2, "x")
	run("Example 3: update{x} rewrites the policy to y+4", example3, "y")
}
