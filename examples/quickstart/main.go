// Quickstart: model and solve the soft CSP of Fig. 1 of the paper,
// showing the core workflow — declare a space over a c-semiring,
// state soft constraints, combine, project, and read off the best
// level of consistency.
package main

import (
	"fmt"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
	"softsoa/internal/solver"
)

func main() {
	// A weighted semiring: values are costs, combination adds them,
	// and the best level is the minimum attainable cost.
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("X", core.LabelDomain("a", "b"))
	y := s.AddVariable("Y", core.LabelDomain("a", "b"))

	// Fig. 1: two unary constraints and one binary constraint.
	c1 := core.Unary(s, x, map[string]float64{"a": 1, "b": 9})
	c2 := core.Binary(s, x, y, map[[2]string]float64{
		{"a", "a"}: 5, {"a", "b"}: 1, {"b", "a"}: 2, {"b", "b"}: 2,
	})
	c3 := core.Unary(s, y, map[string]float64{"a": 5, "b": 5})

	// An SCSP with X as the variable of interest.
	p := core.NewProblem(s, x).Add(c1, c2, c3)

	fmt.Println("combined constraint (⊗ of c1, c2, c3):")
	comb := p.Combined()
	comb.ForEach(func(a core.Assignment, v float64) {
		fmt.Printf("  X=%s Y=%s → %g\n", a.Label(x), a.Label(y), v)
	})

	fmt.Println("\nsolution Sol(P) = (⊗C)⇓{X}  (paper: ⟨a⟩→7, ⟨b⟩→16):")
	sol := p.Sol()
	sol.ForEach(func(a core.Assignment, v float64) {
		fmt.Printf("  X=%s → %g\n", a.Label(x), v)
	})

	fmt.Printf("\nbest level of consistency: %g  (paper: 7)\n", p.Blevel())

	res := solver.BranchAndBound(p)
	best := res.Best[0]
	fmt.Printf("optimal assignment: X=%s Y=%s at cost %g (%d nodes, %d pruned)\n",
		best.Assignment.Label(x), best.Assignment.Label(y), best.Value,
		res.Stats.Nodes, res.Stats.Prunes)

	// The same algebra under a fuzzy semiring: preferences in [0,1],
	// combination takes the min, optimisation the max.
	fs := core.NewSpace[float64](semiring.Fuzzy{})
	q := fs.AddVariable("quality", core.LabelDomain("low", "medium", "high"))
	pref := core.Unary(fs, q, map[string]float64{"low": 0.2, "medium": 0.7, "high": 0.9})
	capacity := core.Unary(fs, q, map[string]float64{"low": 1, "medium": 0.8, "high": 0.3})
	both := core.Combine(pref, capacity)
	fmt.Println("\nfuzzy variant — preference ⊗ capacity:")
	both.ForEach(func(a core.Assignment, v float64) {
		fmt.Printf("  quality=%-6s → %g\n", a.Label(q), v)
	})
	fmt.Printf("best compromise: %g (medium)\n", core.Blevel(both))
}
