// Slalifecycle: the nonmonotonic life of a Service Level Agreement.
// A client negotiates an SLA with the broker under a capability
// policy (the paper's "MUST use HTTP Authentication, MAY use GZIP"),
// later relaxes it by renegotiation — which retracts (÷) the old
// requirement from the live constraint store, Example-2 style — and
// a deadline-bound nmsccp client shows how the timed extension
// abandons a negotiation that never converges.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"softsoa/internal/broker"
	"softsoa/internal/core"
	"softsoa/internal/policy"
	"softsoa/internal/sccp"
	"softsoa/internal/semiring"
	"softsoa/internal/soa"
)

func main() {
	vocab, err := policy.NewVocabulary("http-auth", "gzip", "tls13")
	if err != nil {
		log.Fatal(err)
	}
	srv := broker.NewServer(broker.DefaultLinkPenalty, broker.WithServerVocabulary(vocab))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := broker.NewClient(ts.URL, ts.Client())

	// Two providers: the cheaper one lacks HTTP authentication.
	publish := func(name string, base float64, caps ...string) {
		doc := &soa.Document{
			Service: "failmgmt", Provider: name, Region: "eu",
			Capabilities: caps,
			Attributes: []soa.Attribute{{
				Name: "hours", Metric: soa.MetricCost,
				Base: base, PerUnit: 1, Resource: "failures", MaxUnits: 10,
			}},
		}
		if err := client.Publish(context.Background(), doc); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published %-8s base cost %.0f, capabilities %v\n", name, base, caps)
	}
	publish("budget", 2, "gzip")
	publish("secure", 5, "http-auth", "gzip")

	// 1. Negotiate under "MUST http-auth; MAY gzip".
	sla, err := client.Negotiate(context.Background(), broker.NegotiateRequest{
		Service: "failmgmt", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
		Must: []string{"http-auth"},
		May:  []string{"gzip"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSLA %s v%d: provider %s at level %.0f (budget was excluded: no http-auth)\n",
		sla.ID, sla.Version, sla.Providers[0], sla.AgreedLevel)

	// 2. Renegotiate: retract the 2x failure-handling requirement for
	// a flat one — the broker divides (÷) the old constraint out of
	// the live store.
	relaxed, err := client.Renegotiate(context.Background(), broker.RenegotiateRequest{
		ID: sla.ID,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 0, Resource: "failures", MaxUnits: 10,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("renegotiated to v%d at level %.0f (client's 2x policy retracted)\n",
		relaxed.Version, relaxed.AgreedLevel)

	// 3. A too-demanding renegotiation is rejected; v2 stands.
	lower := 1.0
	if _, err := client.Renegotiate(context.Background(), broker.RenegotiateRequest{
		ID: sla.ID,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 0, Resource: "failures", MaxUnits: 10,
		},
		Lower: &lower,
	}); err != nil {
		fmt.Printf("demanding cost ≤ 1 rejected as expected: %v\n", err)
	}
	final, err := client.SLA(context.Background(), sla.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agreement still at v%d, level %.0f\n", final.Version, final.AgreedLevel)

	// 4. The timed extension: a client that waits for a partner token
	// only so long, then withdraws its policy instead of deadlocking.
	fmt.Println("\ntimed negotiation (nmsccp timeout):")
	sr := semiring.Weighted{}
	space := core.NewSpace[float64](sr)
	x := space.AddVariable("x", core.IntDomain(0, 10))
	token := space.AddVariable("token", core.IntDomain(0, 1))
	policyCon := core.NewConstraint(space, []core.Variable{x}, func(a core.Assignment) float64 {
		return 2 * a.Num(x)
	})
	tokenCon := core.NewConstraint(space, []core.Variable{token}, func(a core.Assignment) float64 {
		if a.Num(token) == 1 {
			return sr.One()
		}
		return sr.Zero()
	})
	agent := sccp.Tell[float64]{C: policyCon, Next: sccp.Timeout[float64]{
		Budget: 5,
		Body:   sccp.Ask[float64]{C: tokenCon, Next: sccp.Success[float64]{}},
		Else:   sccp.Retract[float64]{C: policyCon, Next: sccp.Success[float64]{}},
	}}
	m := sccp.NewMachine(space, agent)
	status, err := m.Run(100)
	if err != nil {
		log.Fatal(err)
	}
	ticks := 0
	for _, ev := range m.Trace() {
		if ev.Rule == "Tick Timeout" {
			ticks++
		}
	}
	fmt.Printf("partner never answered: %d ticks elapsed, status %s, policy withdrawn (σ⇓∅ = %s)\n",
		ticks, status, sr.Format(m.Store().Blevel()))
}
