package softsoa_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"softsoa/internal/broker"
	"softsoa/internal/broker/store"
	"softsoa/internal/soa"
)

// brokerProc is one running brokerd under test.
type brokerProc struct {
	cmd *exec.Cmd
	url string
	out *lockedBuffer
}

// lockedBuffer collects the daemon's combined output; the race
// detector objects to reading a bytes.Buffer the process goroutine is
// still writing.
type lockedBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return string(b.buf)
}

// freePort reserves an ephemeral port and releases it for the daemon.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return port
}

// startBrokerd launches brokerd with a durable state directory and
// waits until /v1/health answers.
func startBrokerd(t *testing.T, bin, stateDir string) *brokerProc {
	t.Helper()
	port := freePort(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	out := &lockedBuffer{}
	cmd := exec.Command(bin,
		"-addr", addr,
		"-state-dir", stateDir,
		"-snapshot-every", "4",
		"-failover",
		"-breaker-threshold", "3",
		"-breaker-open", "1h",
		"-drain-deadline", "5s",
	)
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &brokerProc{cmd: cmd, url: "http://" + addr, out: out}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			//lint:ignore errcheck best-effort cleanup of a leaked daemon
			_ = cmd.Process.Kill()
			//lint:ignore errcheck reaping the killed daemon
			_ = cmd.Wait()
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(p.url + "/v1/health")
		if err == nil {
			//lint:ignore errcheck test response body close
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("brokerd never became ready\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitExit reaps the process, returning its wait error.
func waitExit(t *testing.T, p *brokerProc) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(15 * time.Second):
		//lint:ignore errcheck last-resort kill of a hung daemon
		_ = p.cmd.Process.Kill()
		t.Fatalf("brokerd did not exit\n%s", p.out.String())
		return nil
	}
}

// crashIDs are the agreements driveBrokerOps mints, in order.
type crashIDs struct {
	compare []string // SLAs whose recovered state must be bit-exact
	hammer  string   // the SLA under fire while the daemon is killed
}

// driveBrokerOps runs the identical op sequence against a fresh
// broker: two providers and a renegotiated SLA, a second SLA driven
// through violation → breaker trip → failover, a dedicated hammer
// provider+SLA for kill-window traffic, plus a failed negotiation and
// a composition so the id counter moves past them.
func driveBrokerOps(t *testing.T, baseURL string) crashIDs {
	t.Helper()
	client := broker.NewClient(baseURL, nil)
	ctx := context.Background()
	publish := func(provider, service string, base float64) {
		t.Helper()
		if err := client.Publish(ctx, &soa.Document{
			Service: service, Provider: provider, Region: "eu",
			Attributes: []soa.Attribute{{
				Name: "fee", Metric: soa.MetricCost,
				Base: base, PerUnit: 0, Resource: "failures", MaxUnits: 10,
			}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	publish("flaky", "pay", 2)
	publish("backup", "pay", 3)
	publish("steady", "ping", 2)

	lower, upper := 4.0, 1.0
	req := broker.NegotiateRequest{
		Service: "pay", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
		Lower: &lower, Upper: &upper,
	}
	sla1, err := client.Negotiate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Renegotiate(ctx, broker.RenegotiateRequest{
		ID: sla1.ID,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 0, Resource: "failures", MaxUnits: 10,
		},
	}); err != nil {
		t.Fatal(err)
	}
	sla2, err := client.Negotiate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var failedOver bool
	for i := 0; i < 3; i++ {
		obs, err := client.Observe(ctx, sla2.ID, 6)
		if err != nil {
			t.Fatal(err)
		}
		failedOver = failedOver || obs.FailedOver
	}
	if !failedOver {
		t.Fatal("three violations should have failed the SLA over")
	}
	if _, err := client.Observe(ctx, sla2.ID, 3); err != nil {
		t.Fatal(err)
	}

	hreq := req
	hreq.Service = "ping"
	hammer, err := client.Negotiate(ctx, hreq)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := client.Observe(ctx, hammer.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Violated {
		t.Fatal("hammer observation must be compliant, or kill-window traffic would move breaker state")
	}

	impossible := req
	tight := 0.5
	impossible.Lower = &tight
	var noAgree *broker.ErrNoAgreement
	if _, err := client.Negotiate(ctx, impossible); !errors.As(err, &noAgree) {
		t.Fatalf("impossible negotiation: err = %v, want ErrNoAgreement", err)
	}
	if _, err := client.Compose(ctx, broker.ComposeRequest{
		Client: "shop", Metric: soa.MetricCost, Stages: []string{"pay"},
	}); err != nil {
		t.Fatal(err)
	}
	return crashIDs{compare: []string{sla1.ID, sla2.ID}, hammer: hammer.ID}
}

// captureState snapshots the wire form of the recovery surface: every
// comparison SLA, its compliance report, and the breaker board.
func captureState(t *testing.T, baseURL string, ids []string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	paths := []string{"/v1/health"}
	for _, id := range ids {
		paths = append(paths, "/v1/slas/"+id, "/v1/slas/"+id+"/compliance")
	}
	for _, p := range paths {
		resp, err := http.Get(baseURL + p)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		//lint:ignore errcheck test response body close
		_ = resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d\n%s", p, resp.StatusCode, body)
		}
		out[p] = string(body)
	}
	return out
}

// compareState asserts byte-exact equality, dumping a diff artifact
// to $CRASH_DIFF_DIR (for CI upload) when it fails.
func compareState(t *testing.T, label string, want, got map[string]string) {
	t.Helper()
	var diff string
	for p, w := range want {
		if got[p] != w {
			diff += fmt.Sprintf("GET %s\n--- want\n%s\n--- got\n%s\n\n", p, w, got[p])
		}
	}
	if diff == "" {
		return
	}
	if dir := os.Getenv("CRASH_DIFF_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err == nil {
			//lint:ignore errcheck the diff artifact is best-effort; the test failure below carries the same content
			_ = os.WriteFile(filepath.Join(dir, label+".diff"), []byte(diff), 0o644)
		}
	}
	t.Errorf("%s: recovered state diverged:\n%s", label, diff)
}

// TestBrokerdCrashRecovery is the end-to-end durability check: one
// brokerd is SIGKILLed mid-traffic (with a torn frame appended to its
// WAL for good measure) and restarted on the same state directory;
// its recovered SLAs, compliance counters and breaker states must be
// byte-identical to a control brokerd that ran the same ops and never
// crashed. The hammer SLA absorbing kill-window observations is
// excluded — how many of its appends landed depends on the kill
// instant by design.
func TestBrokerdCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	bin := buildBinary(t, "./cmd/brokerd")

	// Control: same ops, clean life, captured while running.
	ctrlDir := t.TempDir()
	ctrl := startBrokerd(t, bin, ctrlDir)
	ctrlIDs := driveBrokerOps(t, ctrl.url)
	want := captureState(t, ctrl.url, ctrlIDs.compare)

	// Crash run: same ops, then compliant observations hammering a
	// dedicated SLA while the daemon is killed.
	crashDir := t.TempDir()
	crashed := startBrokerd(t, bin, crashDir)
	ids := driveBrokerOps(t, crashed.url)
	stop := make(chan struct{})
	var hammerWG sync.WaitGroup
	hammerWG.Add(1)
	go func() {
		defer hammerWG.Done()
		client := broker.NewClient(crashed.url, nil)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Errors are expected once the kill lands.
			//lint:ignore errcheck the kill window makes failures here part of the scenario
			_, _ = client.Observe(context.Background(), ids.hammer, 2)
		}
	}()
	time.Sleep(150 * time.Millisecond) // let the hammer land mid-flight
	if err := crashed.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	hammerWG.Wait()
	if err := waitExit(t, crashed); err == nil {
		t.Fatal("SIGKILL should not produce a clean exit")
	}

	// Damage the tail the way a torn final append would.
	wal := filepath.Join(crashDir, store.WALName)
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`0bad0bad {"seq":9999,"type":"negoti`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := startBrokerd(t, bin, crashDir)
	compareState(t, "crash-recover", want, captureState(t, recovered.url, ids.compare))

	// The recovered broker keeps working: the id counter resumed past
	// everything minted before the kill.
	sla, err := broker.NewClient(recovered.url, nil).Negotiate(context.Background(), broker.NegotiateRequest{
		Service: "ping", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range append(ids.compare, ids.hammer) {
		if sla.ID == old {
			t.Errorf("post-recovery negotiation reused id %s", sla.ID)
		}
	}
}

// TestBrokerdGracefulDrain: SIGTERM must exit cleanly, flush a final
// snapshot (leaving an empty WAL), and a restart on the same
// directory must serve identical state.
func TestBrokerdGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	bin := buildBinary(t, "./cmd/brokerd")
	dir := t.TempDir()
	p := startBrokerd(t, bin, dir)
	ids := driveBrokerOps(t, p.url)
	want := captureState(t, p.url, ids.compare)

	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := waitExit(t, p); err != nil {
		t.Fatalf("SIGTERM exit: %v\n%s", err, p.out.String())
	}
	wal, err := os.Stat(filepath.Join(dir, store.WALName))
	if err != nil {
		t.Fatal(err)
	}
	if wal.Size() != 0 {
		t.Errorf("WAL holds %d bytes after a drain, want 0 (all state in the final snapshot)", wal.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, store.SnapshotName)); err != nil {
		t.Errorf("drain left no snapshot: %v", err)
	}

	p2 := startBrokerd(t, bin, dir)
	compareState(t, "graceful-drain", want, captureState(t, p2.url, ids.compare))
}
