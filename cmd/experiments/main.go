// Command experiments regenerates every experiment recorded in
// EXPERIMENTS.md: the paper-conformance checks E1–E9 (each worked
// example and figure of the paper) and the scaling/ablation studies
// E10–E14. Each experiment prints a table of paper-claimed vs
// measured values and a PASS/FAIL verdict.
//
// Usage:
//
//	experiments [-run all|E1|E2|...]
package main

import (
	"flag"
	"fmt"
	"os"

	"softsoa/internal/experiments"
)

func main() {
	runID := flag.String("run", "all", "experiment id (E1..E14) or all")
	flag.Parse()

	failed, matched, err := experiments.Report(os.Stdout, *runID)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "experiments: unknown id %q\n", *runID)
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Printf("%d check(s) FAILED\n", failed)
		os.Exit(1)
	}
	fmt.Println("all checks passed")
}
