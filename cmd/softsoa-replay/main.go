// Command softsoa-replay records and verifies flight-recorder
// journals (internal/obs/journal). A journal captures an nmsccp
// execution — every applied transition with its rule, store delta and
// blevel — plus enough context (program source, scheduler seed, fuel)
// to re-execute it deterministically. Verification replays each
// replayable segment and compares rule by rule, then the final store
// and blevel; any disagreement means the engine's semantics drifted
// since the recording.
//
// Verify a journal (the default mode; exit status 1 on mismatch):
//
//	softsoa-replay journal.jsonl
//	curl -s broker:8080/v1/negotiations/sla-1/journal?format=jsonl | softsoa-replay -
//
// Record a program into a journal:
//
//	softsoa-replay -record program.sccp -o journal.jsonl [-seed 1] [-fuel 10000] [-label run] [-id my-journal]
//
// Journals contain no timestamps: recording the same program twice
// produces byte-identical output, which is what makes the golden
// fixtures under testdata/journals byte-for-byte stable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"softsoa/internal/obs/journal"
	"softsoa/internal/replay"
)

func main() {
	record := flag.String("record", "", "record this nmsccp program instead of verifying a journal")
	out := flag.String("o", "", "output path for -record (default stdout)")
	seed := flag.Int64("seed", 1, "scheduler seed for -record")
	fuel := flag.Int("fuel", 10000, "transition budget for -record")
	label := flag.String("label", "run", "segment label for -record")
	id := flag.String("id", "", "journal id for -record")
	capacity := flag.Int("capacity", 0, "journal event capacity for -record (0 = default)")
	quiet := flag.Bool("q", false, "verify silently; only the exit status reports the outcome")
	flag.Parse()

	if *record != "" {
		if err := recordProgram(*record, *out, *id, *label, *seed, *fuel, *capacity); err != nil {
			fmt.Fprintf(os.Stderr, "softsoa-replay: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: softsoa-replay [-q] journal.jsonl | softsoa-replay -record prog.sccp -o journal.jsonl")
		os.Exit(2)
	}
	ok, err := verifyJournal(flag.Arg(0), *quiet)
	if err != nil {
		fmt.Fprintf(os.Stderr, "softsoa-replay: %v\n", err)
		os.Exit(1)
	}
	if !ok {
		os.Exit(1)
	}
}

func recordProgram(progPath, outPath, id, label string, seed int64, fuel, capacity int) error {
	src, err := os.ReadFile(progPath)
	if err != nil {
		return err
	}
	run, err := replay.Record(journal.Meta{ID: id, Kind: "recording"}, label, string(src), seed, fuel, capacity)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if outPath != "" && outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); err == nil && cerr != nil {
				err = cerr
			}
		}()
		w = f
	}
	return run.Journal.WriteJSONL(w)
}

func verifyJournal(path string, quiet bool) (bool, error) {
	r := io.Reader(os.Stdin)
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return false, err
		}
		defer func() {
			//lint:ignore errcheck read-only file, close cannot lose data
			_ = f.Close()
		}()
		r = f
	}
	j, err := journal.ReadJSONL(r)
	if err != nil {
		return false, err
	}
	rep, err := replay.Verify(j)
	if err != nil {
		return false, err
	}
	if !quiet {
		printReport(j, rep)
	}
	return rep.OK(), nil
}

func printReport(j *journal.Journal, rep *replay.Report) {
	meta := j.Meta()
	fmt.Printf("journal %s kind=%s semiring=%s segments=%d events=%d dropped=%d\n",
		orDash(meta.ID), orDash(meta.Kind), orDash(meta.Semiring),
		len(rep.Segments), len(j.Events()), rep.Dropped)
	for _, s := range rep.Segments {
		switch {
		case !s.Replayable:
			fmt.Printf("  %-24s evidence only (no program), %d events\n", s.Label, s.Events)
		case s.OK():
			fmt.Printf("  %-24s OK: %d transitions replayed exactly\n", s.Label, s.Events)
		default:
			fmt.Printf("  %-24s MISMATCH (%d disagreements)\n", s.Label, len(s.Mismatches))
			for _, m := range s.Mismatches {
				fmt.Printf("    - %s\n", m)
			}
		}
	}
	if rep.OK() {
		fmt.Println("replay: VERIFIED")
	} else {
		fmt.Println("replay: FAILED")
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
