// Command softsoa-load is the standing load harness for brokerd: an
// open-loop generator (constant-RPS or Poisson arrivals) driving the
// /v1 negotiate/observe/renegotiate mix against a running broker.
// Open-loop means arrivals are scheduled by the clock, never by
// completions — a slow broker accumulates in-flight requests instead
// of silently throttling the offered load, so the measured latencies
// include queueing and the 429 shed rate is visible.
//
// Per-route latencies land in client-side obs histograms and are
// reported as bucket-interpolated p50/p99/p999, together with an
// outcome breakdown (ok / no_agreement / shed / error). The report is
// written as timestamp-free JSON (-out), suitable for committing as
// BENCH_load.json and for CI trend comparison.
//
// Usage:
//
//	softsoa-load [-addr http://localhost:8700] [-duration 5s] [-rps 50] \
//	             [-arrivals const|poisson] [-seed 1] [-providers 3] \
//	             [-warm-slas 8] [-violate 0.3] \
//	             [-mix negotiate:1,observe:8,renegotiate:1] \
//	             [-out BENCH_load.json]
//
// The harness publishes its own providers (load-p1..N, service
// "loadsvc") and negotiates a warm pool of SLAs before the clock
// starts, so every route has work from the first arrival.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"softsoa/internal/broker"
	"softsoa/internal/obs"
	"softsoa/internal/soa"
)

const service = "loadsvc"

func main() {
	addr := flag.String("addr", "http://localhost:8700", "broker base URL")
	duration := flag.Duration("duration", 5*time.Second, "how long to offer load")
	rps := flag.Float64("rps", 50, "offered arrivals per second")
	arrivals := flag.String("arrivals", "const",
		"arrival process: const (evenly spaced) or poisson (exponential inter-arrival)")
	seed := flag.Int64("seed", 1, "RNG seed for arrivals, mix draws and violation draws")
	providers := flag.Int("providers", 3, "providers to publish before the run")
	warmSLAs := flag.Int("warm-slas", 8, "SLAs to negotiate before the clock starts")
	violate := flag.Float64("violate", 0.3,
		"fraction of observations reporting a violating level (agreed * 1.5)")
	mixSpec := flag.String("mix", "negotiate:1,observe:8,renegotiate:1",
		"weighted request mix over negotiate, observe and renegotiate")
	out := flag.String("out", "BENCH_load.json", "report path (empty writes stdout only)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	flag.Parse()

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fatal("bad -mix: %v", err)
	}
	if *rps <= 0 {
		fatal("-rps must be positive")
	}
	if *arrivals != "const" && *arrivals != "poisson" {
		fatal("-arrivals must be const or poisson")
	}

	// No WithRetry: exactly one attempt per request, so admission sheds
	// surface as 429 outcomes instead of hiding behind backoff.
	client := broker.NewClient(*addr, &http.Client{Timeout: *timeout})
	ctx := context.Background()
	if err := client.Ping(ctx); err != nil {
		fatal("broker not reachable at %s: %v", *addr, err)
	}

	h := newHarness(client, *seed, *violate)
	if err := h.setup(ctx, *providers, *warmSLAs); err != nil {
		fatal("setup: %v", err)
	}

	fmt.Fprintf(os.Stderr, "softsoa-load: offering %.0f rps (%s arrivals) for %s against %s\n",
		*rps, *arrivals, *duration, *addr)
	h.run(ctx, *duration, *rps, *arrivals, mix)

	rep := h.report(*duration, *rps, *arrivals, mix)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("encode report: %v", err)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal("write %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "softsoa-load: report written to %s\n", *out)
	}
	//lint:ignore errcheck best-effort echo of the report to stdout; the -out file is the artifact
	os.Stdout.Write(data)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "softsoa-load: "+format+"\n", args...)
	os.Exit(1)
}

// parseMix parses "negotiate:1,observe:8,renegotiate:1" into route
// weights.
func parseMix(spec string) (map[string]int, error) {
	mix := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		route, weight, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("entry %q is not route:weight", part)
		}
		switch route {
		case "negotiate", "observe", "renegotiate":
		default:
			return nil, fmt.Errorf("unknown route %q", route)
		}
		w, err := strconv.Atoi(weight)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("weight %q is not a non-negative integer", weight)
		}
		mix[route] = w
	}
	total := 0
	for _, w := range mix {
		total += w
	}
	if total == 0 {
		return nil, errors.New("all weights are zero")
	}
	return mix, nil
}

// poolSLA is one negotiated agreement the observe/renegotiate routes
// draw from.
type poolSLA struct {
	id     string
	agreed float64
}

// harness owns the SLA pool, the RNG and the per-route instruments.
type harness struct {
	client  *broker.Client
	violate float64

	rngMu sync.Mutex
	rng   *rand.Rand // guarded by rngMu; arrival, mix and level draws

	poolMu sync.Mutex
	pool   []poolSLA // guarded by poolMu

	reg      *obs.Registry
	latency  *obs.HistogramVec // by route
	outcomes *obs.CounterVec   // by route, outcome
	inflight *obs.Gauge
}

func newHarness(client *broker.Client, seed int64, violate float64) *harness {
	reg := obs.NewRegistry()
	return &harness{
		client:  client,
		violate: violate,
		rng:     rand.New(rand.NewSource(seed)),
		reg:     reg,
		latency: reg.HistogramVec("load_latency_seconds",
			"Client-observed request latency by route.", nil, "route"),
		outcomes: reg.CounterVec("load_requests_total",
			"Requests by route and outcome.", "route", "outcome"),
		inflight: reg.Gauge("load_in_flight", "Open-loop requests currently in flight."),
	}
}

// setup publishes the harness's providers and negotiates the warm SLA
// pool. Provider fees climb in 0.1 steps so failovers always have a
// (slightly pricier) healthy alternative.
func (h *harness) setup(ctx context.Context, providers, warmSLAs int) error {
	if providers < 1 {
		providers = 1
	}
	regions := []string{"eu", "us"}
	for i := 0; i < providers; i++ {
		doc := &soa.Document{
			Service:  service,
			Provider: fmt.Sprintf("load-p%d", i+1),
			Region:   regions[i%len(regions)],
			Attributes: []soa.Attribute{{
				Name: "fee", Metric: soa.MetricCost,
				Base: 2 + 0.1*float64(i), PerUnit: 0,
				Resource: "failures", MaxUnits: 10,
			}},
		}
		if err := h.client.Publish(ctx, doc); err != nil {
			return fmt.Errorf("publish %s: %w", doc.Provider, err)
		}
	}
	for i := 0; i < warmSLAs; i++ {
		if err := h.negotiate(ctx); err != nil {
			return fmt.Errorf("warm SLA %d: %w", i+1, err)
		}
	}
	return nil
}

func (h *harness) negotiateRequest() broker.NegotiateRequest {
	lower, upper := 4.0, 1.0
	return broker.NegotiateRequest{
		Service: service, Client: "load", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2,
			Resource: "failures", MaxUnits: 10,
		},
		Lower: &lower, Upper: &upper,
	}
}

func (h *harness) negotiate(ctx context.Context) error {
	sla, err := h.client.Negotiate(ctx, h.negotiateRequest())
	if err != nil {
		return err
	}
	h.poolMu.Lock()
	h.pool = append(h.pool, poolSLA{id: sla.ID, agreed: sla.AgreedLevel})
	h.poolMu.Unlock()
	return nil
}

// pick returns a random pooled SLA (zero value when the pool is
// empty, which cannot happen after setup).
func (h *harness) pick() poolSLA {
	h.poolMu.Lock()
	defer h.poolMu.Unlock()
	if len(h.pool) == 0 {
		return poolSLA{}
	}
	h.rngMu.Lock()
	i := h.rng.Intn(len(h.pool))
	h.rngMu.Unlock()
	return h.pool[i]
}

// draw returns a uniform float in [0,1) from the shared RNG.
func (h *harness) draw() float64 {
	h.rngMu.Lock()
	defer h.rngMu.Unlock()
	return h.rng.Float64()
}

// run offers load for the duration: each arrival fires one request on
// its own goroutine, chosen from the weighted mix. The loop sleeps
// between arrivals and never waits for completions.
func (h *harness) run(ctx context.Context, duration time.Duration, rps float64, arrivals string, mix map[string]int) {
	routes := make([]string, 0, len(mix))
	for r := range mix {
		routes = append(routes, r)
	}
	sort.Strings(routes) // deterministic draw order for a fixed seed
	totalWeight := 0
	for _, r := range routes {
		totalWeight += mix[r]
	}
	mean := float64(time.Second) / rps
	var wg sync.WaitGroup
	deadline := time.Now().Add(duration)
	for time.Now().Before(deadline) {
		var wait time.Duration
		if arrivals == "poisson" {
			wait = time.Duration(h.expDraw() * mean)
		} else {
			wait = time.Duration(mean)
		}
		time.Sleep(wait)
		route := routes[len(routes)-1]
		n := int(h.draw() * float64(totalWeight))
		for _, r := range routes {
			if n < mix[r] {
				route = r
				break
			}
			n -= mix[r]
		}
		wg.Add(1)
		go func(route string) {
			defer wg.Done()
			h.fire(ctx, route)
		}(route)
	}
	wg.Wait()
}

// expDraw returns an Exp(1) sample for Poisson inter-arrival times.
func (h *harness) expDraw() float64 {
	h.rngMu.Lock()
	defer h.rngMu.Unlock()
	return h.rng.ExpFloat64()
}

// fire executes one request and records its latency and outcome.
func (h *harness) fire(ctx context.Context, route string) {
	h.inflight.Add(1)
	defer h.inflight.Add(-1)
	start := time.Now()
	var err error
	switch route {
	case "negotiate":
		err = h.negotiate(ctx)
	case "observe":
		sla := h.pick()
		level := sla.agreed
		if h.draw() < h.violate {
			level = sla.agreed * 1.5
		}
		_, err = h.client.Observe(ctx, sla.id, level)
	case "renegotiate":
		sla := h.pick()
		req := h.negotiateRequest()
		_, err = h.client.Renegotiate(ctx, broker.RenegotiateRequest{
			ID: sla.id, Requirement: req.Requirement, Lower: req.Lower, Upper: req.Upper,
		})
	}
	h.latency.With(route).Observe(time.Since(start).Seconds())
	h.outcomes.With(route, classify(err)).Inc()
}

// classify maps a client error to an outcome label. 429 sheds get
// their own bucket — they are the admission gate working as designed,
// not failures.
func classify(err error) string {
	if err == nil {
		return "ok"
	}
	var na *broker.ErrNoAgreement
	if errors.As(err, &na) {
		return "no_agreement"
	}
	var be *broker.BrokerError
	if errors.As(err, &be) && be.Status == http.StatusTooManyRequests {
		return "shed"
	}
	return "error"
}

// Report shapes. Deliberately timestamp-free: committing two runs of
// BENCH_load.json diffs only measured values, never wall-clock noise.

type routeReport struct {
	Sent     int64            `json:"sent"`
	Outcomes map[string]int64 `json:"outcomes"`
	P50Ms    float64          `json:"p50_ms"`
	P99Ms    float64          `json:"p99_ms"`
	P999Ms   float64          `json:"p999_ms"`
	MeanMs   float64          `json:"mean_ms"`
}

type loadReport struct {
	Config struct {
		RPS             float64        `json:"rps"`
		DurationSeconds float64        `json:"duration_seconds"`
		Arrivals        string         `json:"arrivals"`
		Mix             map[string]int `json:"mix"`
	} `json:"config"`
	Routes map[string]routeReport `json:"routes"`
	Totals struct {
		Sent        int64   `json:"sent"`
		Shed        int64   `json:"shed"`
		Errors      int64   `json:"errors"`
		AchievedRPS float64 `json:"achieved_rps"`
	} `json:"totals"`
}

var outcomeLabels = []string{"ok", "no_agreement", "shed", "error"}

func (h *harness) report(duration time.Duration, rps float64, arrivals string, mix map[string]int) loadReport {
	var rep loadReport
	rep.Config.RPS = rps
	rep.Config.DurationSeconds = duration.Seconds()
	rep.Config.Arrivals = arrivals
	rep.Config.Mix = mix
	rep.Routes = make(map[string]routeReport)
	for route := range mix {
		hist := h.latency.With(route)
		rr := routeReport{Outcomes: make(map[string]int64)}
		for _, o := range outcomeLabels {
			n := h.outcomes.With(route, o).Value()
			rr.Sent += n
			if n > 0 {
				rr.Outcomes[o] = n
			}
		}
		if hist.Count() > 0 {
			rr.P50Ms = toMs(hist.Quantile(0.5))
			rr.P99Ms = toMs(hist.Quantile(0.99))
			rr.P999Ms = toMs(hist.Quantile(0.999))
			rr.MeanMs = toMs(hist.Sum() / float64(hist.Count()))
		}
		rep.Routes[route] = rr
		rep.Totals.Sent += rr.Sent
		rep.Totals.Shed += rr.Outcomes["shed"]
		rep.Totals.Errors += rr.Outcomes["error"]
	}
	rep.Totals.AchievedRPS = round3(float64(rep.Totals.Sent) / duration.Seconds())
	return rep
}

// toMs converts seconds to milliseconds rounded to 3 decimals.
func toMs(s float64) float64 {
	if math.IsNaN(s) {
		return 0
	}
	return round3(s * 1000)
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
