// Command scspgen emits a random Soft Constraint Satisfaction Problem
// in the scspfile format consumed by scspsolve, drawn from the same
// seeded generators the benchmark harness uses.
//
// Usage:
//
//	scspgen [-semiring weighted|fuzzy] [-vars 6] [-domain 3]
//	        [-density 0.5] [-tightness 0.9] [-seed 1] > problem.scsp
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"softsoa/internal/core"
	"softsoa/internal/workload"
)

func main() {
	semiringName := flag.String("semiring", "weighted", "semiring: weighted or fuzzy")
	vars := flag.Int("vars", 6, "number of variables")
	domain := flag.Int("domain", 3, "domain size per variable")
	density := flag.Float64("density", 0.5, "fraction of variable pairs with a binary constraint")
	tightness := flag.Float64("tightness", 0.9, "fraction of tuples with a non-One value")
	seed := flag.Int64("seed", 1, "generator seed (same seed, same problem)")
	flag.Parse()

	params := workload.SCSPParams{
		Vars: *vars, DomainSize: *domain,
		Density: *density, Tightness: *tightness, Seed: *seed,
	}
	var (
		p   *core.Problem[float64]
		err error
	)
	switch *semiringName {
	case "weighted":
		p, err = workload.RandomWeightedSCSP(params)
	case "fuzzy":
		p, err = workload.RandomFuzzySCSP(params)
	default:
		log.Fatalf("scspgen: unknown semiring %q (want weighted or fuzzy)", *semiringName)
	}
	if err != nil {
		log.Fatalf("scspgen: %v", err)
	}
	if err := write(os.Stdout, *semiringName, params, p); err != nil {
		log.Fatalf("scspgen: %v", err)
	}
}

// write renders the problem in the scspfile format: the variables,
// the con line, and one tabulated constraint per generated one.
func write(w *os.File, semiringName string, params workload.SCSPParams, p *core.Problem[float64]) error {
	sr := p.Space().Semiring()
	// Write errors (closed pipe, full disk) are sticky in the
	// buffered writer and surface at the final Flush.
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# random %s SCSP: vars=%d domain=%d density=%g tightness=%g seed=%d\n",
		semiringName, params.Vars, params.DomainSize, params.Density, params.Tightness, params.Seed)
	fmt.Fprintf(bw, "semiring %s\n", semiringName)
	for _, v := range p.Space().Variables() {
		labels := make([]string, 0, params.DomainSize)
		for _, d := range p.Space().Domain(v) {
			labels = append(labels, d.Label)
		}
		fmt.Fprintf(bw, "var %s { %s }\n", v, strings.Join(labels, " "))
	}
	conNames := make([]string, 0, len(p.Con()))
	for _, v := range p.Con() {
		conNames = append(conNames, string(v))
	}
	fmt.Fprintf(bw, "con %s\n", strings.Join(conNames, " "))

	for i, c := range p.Constraints() {
		scope := c.Scope()
		scopeNames := make([]string, len(scope))
		for j, v := range scope {
			scopeNames[j] = string(v)
		}
		var entries []string
		c.ForEach(func(a core.Assignment, val float64) {
			if sr.Eq(val, sr.One()) {
				return // omitted tuples default to One in the format
			}
			labels := make([]string, len(scope))
			for j, v := range scope {
				labels[j] = a.Label(v)
			}
			entries = append(entries, fmt.Sprintf("%s=%s",
				strings.Join(labels, ","), sr.Format(val)))
		})
		if len(entries) == 0 {
			continue // vacuous constraint
		}
		fmt.Fprintf(bw, "c%d(%s): %s\n", i+1, strings.Join(scopeNames, ","), strings.Join(entries, " "))
	}
	return bw.Flush()
}
