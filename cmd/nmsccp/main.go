// Command nmsccp runs a nonmonotonic soft concurrent constraint
// program written in the surface syntax of internal/sccp: clauses,
// tell/ask/nask/retract/update actions with checked transitions,
// parallel composition, guarded choice and hiding. It prints the
// final status, the store's consistency level and, with -trace, every
// applied transition.
//
// Usage:
//
//	nmsccp [-fuel 1000] [-seed 1] [-trace] [-project x,y] program.sccp
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"softsoa/internal/core"
	"softsoa/internal/sccp"
)

func main() {
	fuel := flag.Int("fuel", 1000, "maximum number of transitions")
	seed := flag.Int64("seed", 1, "scheduler seed (interleavings are reproducible per seed)")
	seeds := flag.Int("seeds", 0, "explore N scheduler seeds and summarise the outcomes (0 = single run)")
	format := flag.Bool("fmt", false, "print the program in canonical formatting and exit")
	trace := flag.Bool("trace", false, "print every applied transition")
	project := flag.String("project", "", "comma-separated variables to print the store over")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nmsccp [-fuel N] [-seed N] [-trace] [-project x,y] program.sccp")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatalf("nmsccp: %v", err)
	}
	if *format {
		prog, err := sccp.Parse(string(src))
		if err != nil {
			log.Fatalf("nmsccp: %v", err)
		}
		fmt.Print(sccp.Format(prog))
		return
	}

	compiled, err := sccp.ParseAndCompile(string(src))
	if err != nil {
		log.Fatalf("nmsccp: %v", err)
	}

	if *seeds > 0 {
		exploreSeeds(compiled, *seeds, *fuel)
		return
	}

	opts := []sccp.MachineOption[float64]{sccp.WithSeed[float64](*seed)}
	if *trace {
		// -trace prints the complete history, so opt out of the
		// bounded ring for this one finite run.
		opts = append(opts, sccp.WithUnboundedTrace[float64]())
	}
	m := compiled.NewMachine(opts...)
	status, err := m.Run(*fuel)
	if err != nil {
		log.Fatalf("nmsccp: %v", err)
	}

	if *trace {
		for _, ev := range m.Trace() {
			fmt.Printf("%4d  %-28s blevel=%s  %s\n",
				ev.Step, ev.Rule, compiled.Semiring.Format(ev.Blevel), ev.Agent)
		}
	}
	fmt.Printf("status: %s after %d transitions\n", status, m.Steps())
	fmt.Printf("store consistency (σ⇓∅): %s\n", compiled.Semiring.Format(m.Store().Blevel()))
	if status == sccp.Stuck {
		fmt.Printf("blocked agent: %s\n", m.Agent())
	}

	if *project != "" {
		var vars []core.Variable
		for _, name := range strings.Split(*project, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !compiled.Space.HasVariable(core.Variable(name)) {
				log.Fatalf("nmsccp: -project: unknown variable %q", name)
			}
			vars = append(vars, core.Variable(name))
		}
		proj := core.ProjectTo(m.Store().Constraint(), vars...)
		fmt.Printf("store ⇓ {%s}:\n", *project)
		proj.ForEach(func(a core.Assignment, v float64) {
			parts := make([]string, len(vars))
			for i, vv := range vars {
				parts[i] = fmt.Sprintf("%s=%s", vv, a.Label(vv))
			}
			fmt.Printf("  %s → %s\n", strings.Join(parts, " "), compiled.Semiring.Format(v))
		})
	}

	if status != sccp.Succeeded {
		os.Exit(1)
	}
}

// exploreSeeds runs the program under several scheduler seeds and
// summarises the outcome distribution — a quick check of whether the
// program's result depends on the interleaving.
func exploreSeeds(compiled *sccp.Compiled, n, fuel int) {
	statuses := map[string]int{}
	levels := map[string]int{}
	for seed := int64(1); seed <= int64(n); seed++ {
		m := compiled.NewMachine(sccp.WithSeed[float64](seed))
		status, err := m.Run(fuel)
		if err != nil {
			statuses["error: "+err.Error()]++
			continue
		}
		statuses[status.String()]++
		levels[compiled.Semiring.Format(m.Store().Blevel())]++
	}
	fmt.Printf("outcomes over %d seeds:\n", n)
	for s, c := range statuses {
		fmt.Printf("  status %-12s × %d\n", s, c)
	}
	for l, c := range levels {
		fmt.Printf("  final σ⇓∅ %-8s × %d\n", l, c)
	}
	if len(statuses) == 1 && len(levels) <= 1 {
		fmt.Println("schedule-independent: every interleaving agrees")
	} else {
		fmt.Println("schedule-SENSITIVE: interleavings diverge (nonmonotonic operators in play)")
	}
}
