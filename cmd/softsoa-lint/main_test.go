package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTinyModule lays down a throwaway module with one planted
// atomiccheck finding (module analyzers run regardless of import
// path, so the driver's whole pipeline is exercised without loading
// the real tree).
func writeTinyModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tinymod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "x", "x.go"), `package x

import "sync/atomic"

type C struct{ n int64 }

func inc(c *C) { atomic.AddInt64(&c.n, 1) }

func read(c *C) int64 { return c.n }
`)
	return dir
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// runCapture invokes the driver and captures its stdout.
func runCapture(t *testing.T, args ...string) (int, string) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run(args)
	w.Close()
	os.Stdout = old
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return code, b.String()
}

func TestExitCodeDiscipline(t *testing.T) {
	dir := writeTinyModule(t)
	if code, _ := runCapture(t, "-C", dir); code != 1 {
		t.Errorf("tree with a finding: exit %d, want 1", code)
	}
	if code, _ := runCapture(t, "-C", dir, "-enable", "lockorder"); code != 0 {
		t.Errorf("clean under lockorder alone: exit %d, want 0", code)
	}
	if code, _ := runCapture(t, "-C", dir, "-enable", "nonsense"); code != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2", code)
	}
	if code, _ := runCapture(t, "-C", t.TempDir()); code != 2 {
		t.Errorf("directory outside any module: exit %d, want 2", code)
	}
}

func TestSARIFOutput(t *testing.T) {
	dir := writeTinyModule(t)
	out := filepath.Join(dir, "lint.sarif")
	code, _ := runCapture(t, "-C", dir, "-sarif", out)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (SARIF does not change exit discipline)", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected log shape: version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "softsoa-lint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	if len(run.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "atomiccheck" {
		t.Errorf("ruleId %q, want atomiccheck", res.RuleID)
	}
	uri := res.Locations[0].PhysicalLocation.ArtifactLocation.URI
	if uri != "x/x.go" {
		t.Errorf("artifact URI %q, want module-relative x/x.go", uri)
	}
	if res.Locations[0].PhysicalLocation.Region.StartLine != 9 {
		t.Errorf("startLine %d, want 9", res.Locations[0].PhysicalLocation.Region.StartLine)
	}
	ids := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ids[r.ID] = true
	}
	for _, want := range []string{"atomiccheck", "lockorder", "leakcheck", "hotpath", "determinism"} {
		if !ids[want] {
			t.Errorf("rules missing %q", want)
		}
	}
}

func TestBaselineAbsorbsOldFindingsOnly(t *testing.T) {
	dir := writeTinyModule(t)
	bl := filepath.Join(dir, "lint-baseline.json")
	if code, _ := runCapture(t, "-C", dir, "-baseline", bl, "-write-baseline"); code != 0 {
		t.Fatal("write-baseline must exit 0")
	}
	if code, _ := runCapture(t, "-C", dir, "-baseline", bl); code != 0 {
		t.Error("baselined tree must pass")
	}
	// A second, new violation must still fail.
	writeFile(t, filepath.Join(dir, "x", "y.go"), `package x

func write(c *C) { c.n = 0 }
`)
	code, out := runCapture(t, "-C", dir, "-baseline", bl, "-json")
	if code != 1 {
		t.Fatalf("new finding beyond baseline: exit %d, want 1", code)
	}
	var findings []struct {
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Analyzer != "atomiccheck" || !strings.Contains(findings[0].Message, "written plainly") {
		t.Errorf("want only the new write finding, got %v", findings)
	}
}

func TestDebtReport(t *testing.T) {
	dir := writeTinyModule(t)
	writeFile(t, filepath.Join(dir, "x", "sup.go"), `package x

func snap(c *C) int64 { return c.n } //lint:ignore atomiccheck single-writer snapshot for tests

var cold = 0 //lint:ignore lockorder directive kept after the code it excused was deleted
`)
	code, out := runCapture(t, "-C", dir, "-debt")
	if code != 0 {
		t.Fatalf("debt report is informational: exit %d, want 0", code)
	}
	if !strings.Contains(out, "2 suppression(s), 1 stale") {
		t.Errorf("summary line missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "! ") || !strings.Contains(out, "directive kept after") {
		t.Errorf("stale directive not marked:\n%s", out)
	}

	code, out = runCapture(t, "-C", dir, "-debt", "-json")
	if code != 0 {
		t.Fatal("json debt report must exit 0")
	}
	var entries []struct {
		Analyzer string `json:"analyzer"`
		Used     bool   `json:"used"`
		AgeDays  int    `json:"age_days"`
	}
	if err := json.Unmarshal([]byte(out), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	for _, e := range entries {
		if e.AgeDays < 0 {
			t.Errorf("age not resolved for %+v", e)
		}
	}
}
