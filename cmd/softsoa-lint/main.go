// Command softsoa-lint runs the repo's custom static-analysis suite
// (internal/analysis) over the module: determinism of the pure solver
// layers, context-first I/O, lock discipline, error discipline,
// goroutine hygiene, WAL write discipline, and the interprocedural
// quartet — atomic-access consistency, lock-order acyclicity,
// goroutine quit paths and hot-path allocation freedom. It is built
// purely on the standard library's go/parser, go/ast and go/types —
// the module has zero dependencies and the linter keeps it that way.
//
// Usage:
//
//	softsoa-lint [-json] [-list] [-enable a,b] [-disable c]
//	             [-sarif out.sarif] [-baseline lint-baseline.json]
//	             [-write-baseline] [-debt] [patterns...]
//
// Patterns default to ./... and follow the go tool's shape. The exit
// status is 0 when the tree is clean, 1 when any finding is reported
// and 2 on usage or load errors. -sarif additionally writes the
// findings as SARIF 2.1.0 ("-" for stdout). -baseline filters the
// findings through an accepted-debt file so only new violations fail;
// -write-baseline records the current findings into that file. -debt
// reports the //lint:ignore inventory (analyzer, reason, file age,
// staleness) instead of findings. Findings are suppressed inline with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line above; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"softsoa/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("softsoa-lint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	dir := fs.String("C", ".", "directory inside the module to lint")
	sarifPath := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to this file (\"-\" for stdout)")
	baselinePath := fs.String("baseline", "", "accepted-debt file; only findings beyond it fail")
	writeBL := fs.Bool("write-baseline", false, "record the current findings into the -baseline file and exit")
	debt := fs.Bool("debt", false, "report suppression debt (//lint:ignore inventory) instead of findings")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected, err := selectAnalyzers(suite, *enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "softsoa-lint:", err)
		return 2
	}

	root, err := analysis.ModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "softsoa-lint:", err)
		return 2
	}
	pkgs, err := analysis.Load(root, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "softsoa-lint:", err)
		return 2
	}

	findings, sups := analysis.RunWithSuppressions(pkgs, selected)

	if *debt {
		if err := debtReport(os.Stdout, sups, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "softsoa-lint:", err)
			return 2
		}
		return 0
	}

	if *writeBL {
		path := *baselinePath
		if path == "" {
			path = "lint-baseline.json"
		}
		if err := writeBaseline(path, root, findings); err != nil {
			fmt.Fprintln(os.Stderr, "softsoa-lint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "softsoa-lint: recorded %d finding(s) in %s\n", len(findings), path)
		return 0
	}

	absorbed := 0
	if *baselinePath != "" {
		bl, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "softsoa-lint:", err)
			return 2
		}
		if fixed := bl.stale(root, findings); len(fixed) > 0 {
			fmt.Fprintf(os.Stderr, "softsoa-lint: %d baseline entr(ies) no longer match — debt was paid down, refresh with -write-baseline\n", len(fixed))
		}
		findings, absorbed = bl.filter(root, findings)
	}

	if *sarifPath != "" {
		var werr error
		if *sarifPath == "-" {
			werr = writeSARIF(os.Stdout, root, selected, findings)
		} else {
			f, err := os.Create(*sarifPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "softsoa-lint:", err)
				return 2
			}
			werr = writeSARIF(f, root, selected, findings)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "softsoa-lint:", werr)
			return 2
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "softsoa-lint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "softsoa-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	if absorbed > 0 {
		fmt.Fprintf(os.Stderr, "softsoa-lint: clean beyond baseline (%d absorbed)\n", absorbed)
	}
	return 0
}

func selectAnalyzers(suite []*analysis.Analyzer, enable, disable string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	names := func(csv string) ([]string, error) {
		if csv == "" {
			return nil, nil
		}
		var out []string
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if byName[n] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (use -list)", n)
			}
			out = append(out, n)
		}
		return out, nil
	}
	on, err := names(enable)
	if err != nil {
		return nil, err
	}
	off, err := names(disable)
	if err != nil {
		return nil, err
	}
	skip := make(map[string]bool, len(off))
	for _, n := range off {
		skip[n] = true
	}
	var selected []*analysis.Analyzer
	if len(on) > 0 {
		for _, n := range on {
			if !skip[n] {
				selected = append(selected, byName[n])
			}
		}
	} else {
		for _, a := range suite {
			if !skip[a.Name] {
				selected = append(selected, a)
			}
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return selected, nil
}
