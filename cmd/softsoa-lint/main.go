// Command softsoa-lint runs the repo's custom static-analysis suite
// (internal/analysis) over the module: determinism of the pure solver
// layers, context-first I/O, lock discipline, error discipline and
// goroutine hygiene. It is built purely on the standard library's
// go/parser, go/ast and go/types — the module has zero dependencies
// and the linter keeps it that way.
//
// Usage:
//
//	softsoa-lint [-json] [-list] [-enable a,b] [-disable c] [patterns...]
//
// Patterns default to ./... and follow the go tool's shape. The exit
// status is 0 when the tree is clean, 1 when any finding is reported
// and 2 on usage or load errors. Findings are suppressed inline with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line above; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"softsoa/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("softsoa-lint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	dir := fs.String("C", ".", "directory inside the module to lint")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected, err := selectAnalyzers(suite, *enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "softsoa-lint:", err)
		return 2
	}

	root, err := analysis.ModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "softsoa-lint:", err)
		return 2
	}
	pkgs, err := analysis.Load(root, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "softsoa-lint:", err)
		return 2
	}

	findings := analysis.Run(pkgs, selected)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "softsoa-lint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "softsoa-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

func selectAnalyzers(suite []*analysis.Analyzer, enable, disable string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	names := func(csv string) ([]string, error) {
		if csv == "" {
			return nil, nil
		}
		var out []string
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if byName[n] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (use -list)", n)
			}
			out = append(out, n)
		}
		return out, nil
	}
	on, err := names(enable)
	if err != nil {
		return nil, err
	}
	off, err := names(disable)
	if err != nil {
		return nil, err
	}
	skip := make(map[string]bool, len(off))
	for _, n := range off {
		skip[n] = true
	}
	var selected []*analysis.Analyzer
	if len(on) > 0 {
		for _, n := range on {
			if !skip[n] {
				selected = append(selected, byName[n])
			}
		}
	} else {
		for _, a := range suite {
			if !skip[a.Name] {
				selected = append(selected, a)
			}
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return selected, nil
}
