package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"softsoa/internal/analysis"
)

// A baseline records the accepted debt of a tree: fingerprint → count.
// A later run fails only on findings beyond the recorded counts, so a
// new analyzer can land (with its pre-existing findings baselined)
// without blocking CI, while any *new* violation still fails. The
// fingerprint is position-free (analyzer, relative file, message) so
// unrelated edits shifting line numbers do not churn the file.
type baseline struct {
	Version      int            `json:"version"`
	Fingerprints map[string]int `json:"fingerprints"`
}

func fingerprint(root string, f analysis.Finding) string {
	return f.Analyzer + "|" + relURI(root, f.Pos.Filename) + "|" + f.Message
}

func loadBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("%s: unsupported baseline version %d", path, b.Version)
	}
	if b.Fingerprints == nil {
		b.Fingerprints = make(map[string]int)
	}
	return &b, nil
}

func writeBaseline(path, root string, findings []analysis.Finding) error {
	b := baseline{Version: 1, Fingerprints: make(map[string]int)}
	for _, f := range findings {
		b.Fingerprints[fingerprint(root, f)]++
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// filter splits findings into those covered by the baseline and those
// that are new. Counts matter: a baseline entry of 2 absorbs at most
// two identical findings (earliest positions first, findings arrive
// position-sorted), so duplicating a baselined violation still fails.
func (b *baseline) filter(root string, findings []analysis.Finding) (newFindings []analysis.Finding, absorbed int) {
	budget := make(map[string]int, len(b.Fingerprints))
	for k, v := range b.Fingerprints {
		budget[k] = v
	}
	for _, f := range findings {
		fp := fingerprint(root, f)
		if budget[fp] > 0 {
			budget[fp]--
			absorbed++
			continue
		}
		newFindings = append(newFindings, f)
	}
	return newFindings, absorbed
}

// stale returns the baseline fingerprints no current finding consumed
// — fixed debt whose entries should be dropped from the file.
func (b *baseline) stale(root string, findings []analysis.Finding) []string {
	budget := make(map[string]int, len(b.Fingerprints))
	for k, v := range b.Fingerprints {
		budget[k] = v
	}
	for _, f := range findings {
		if fp := fingerprint(root, f); budget[fp] > 0 {
			budget[fp]--
		}
	}
	var out []string
	for k, v := range budget {
		if v > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
