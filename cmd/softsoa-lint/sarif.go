package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"softsoa/internal/analysis"
)

// Minimal SARIF 2.1.0 document — just the subset code-scanning UIs
// consume: one run, one tool, a rule per analyzer, a result per
// finding with a physical location.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// relURI renders a finding's filename relative to the module root with
// forward slashes, as SARIF artifact URIs require.
func relURI(root, filename string) string {
	if rel, err := filepath.Rel(root, filename); err == nil && !filepath.IsAbs(rel) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

func writeSARIF(w io.Writer, root string, suite []*analysis.Analyzer, findings []analysis.Finding) error {
	rules := make([]sarifRule, 0, len(suite)+1)
	for _, a := range suite {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	// Malformed //lint:ignore directives are attributed to "lint",
	// which is not a selectable analyzer but may appear as a ruleId.
	rules = append(rules, sarifRule{ID: "lint", ShortDescription: sarifMessage{Text: "suppression directive hygiene"}})

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relURI(root, f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "softsoa-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
