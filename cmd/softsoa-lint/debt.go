package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"softsoa/internal/analysis"
)

// debtEntry is one row of the suppression-debt report.
type debtEntry struct {
	analysis.Suppression
	AgeDays int `json:"age_days"`
}

// fileAgeDays reports how many days ago the file holding the directive
// was last modified — old suppressions in untouched files are the ones
// most likely to have outlived their reason.
func fileAgeDays(filename string, now time.Time) int {
	st, err := os.Stat(filename)
	if err != nil {
		return -1
	}
	return int(now.Sub(st.ModTime()).Hours() / 24)
}

// debtReport renders the //lint:ignore inventory: every directive with
// its analyzer, reason, position, file age, and whether the run it
// rode along with actually used it. Stale directives (unused under the
// selected analyzers) are counted separately — they are deletion
// candidates, not accepted debt.
func debtReport(w io.Writer, sups []analysis.Suppression, jsonOut bool) error {
	now := time.Now()
	entries := make([]debtEntry, len(sups))
	stale := 0
	for i, s := range sups {
		entries[i] = debtEntry{Suppression: s, AgeDays: fileAgeDays(s.Pos.Filename, now)}
		if !s.Used {
			stale++
		}
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(entries)
	}
	for _, e := range entries {
		mark := " "
		if !e.Used {
			mark = "!"
		}
		age := "?"
		if e.AgeDays >= 0 {
			age = fmt.Sprintf("%dd", e.AgeDays)
		}
		if _, err := fmt.Fprintf(w, "%s %s:%d\t%-12s %5s\t%s\n", mark, e.Pos.Filename, e.Pos.Line, e.Analyzer, age, e.Reason); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d suppression(s), %d stale (marked !)\n", len(entries), stale)
	return err
}
