// Command scspsolve solves a Soft Constraint Satisfaction Problem
// described in the scspfile format (see internal/scspfile) and prints
// the best level of consistency, the optimal solutions over the
// variables of interest, and solver statistics.
//
// Usage:
//
//	scspsolve [-solver bb|exhaustive|ve|ls] [-seed N] [-workers N] problem.scsp
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"softsoa/internal/core"
	"softsoa/internal/scspfile"
	"softsoa/internal/solver"
)

func main() {
	solverName := flag.String("solver", "bb",
		"solver: bb (branch and bound), exhaustive, ve (variable elimination), ls (local search)")
	seed := flag.Int64("seed", 1, "seed for local search")
	propagate := flag.Bool("propagate", false,
		"preprocess with soft arc/node-consistency propagation (equivalence-preserving)")
	workers := flag.Int("workers", 1,
		"work-stealing workers for branch and bound (0 = all CPUs, 1 = sequential reference)")
	parallel := flag.Int("parallel", 1,
		"deprecated alias for -workers")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: scspsolve [-solver bb|exhaustive|ve|ls] [-seed N] [-workers N] problem.scsp")
		os.Exit(2)
	}
	nWorkers := *workers
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			fmt.Fprintln(os.Stderr, "scspsolve: -parallel is deprecated, use -workers")
			nWorkers = *parallel
		}
	})
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatalf("scspsolve: %v", err)
	}
	prob, err := scspfile.Parse(string(src))
	if err != nil {
		log.Fatalf("scspsolve: %v", err)
	}

	target := prob.Scsp
	if *propagate {
		propagated, czero, stats := solver.Propagate(target, 0)
		target = propagated
		fmt.Printf("propagation: c∅ = %s after %d rounds, %d shifts\n",
			prob.Scsp.Space().Semiring().Format(czero), stats.Rounds, stats.Shifts)
	}

	var res solver.Result[float64]
	switch *solverName {
	case "bb":
		res = solver.BranchAndBound(target, solver.WithWorkers(nWorkers))
	case "exhaustive":
		res = solver.Exhaustive(target)
	case "ve":
		res = solver.Eliminate(target)
	case "ls":
		res = solver.LocalSearch(target, solver.WithSeed(*seed))
	default:
		log.Fatalf("scspsolve: unknown solver %q", *solverName)
	}

	sr := prob.Scsp.Space().Semiring()
	fmt.Printf("problem:   %s\n", prob.Scsp)
	fmt.Printf("solver:    %s\n", *solverName)
	fmt.Printf("blevel:    %s\n", sr.Format(res.Blevel))
	if *solverName == "ls" {
		fmt.Println("           (local search: lower bound, not guaranteed optimal)")
	}
	fmt.Printf("solutions: %d\n", len(res.Best))
	con := prob.Scsp.Con()
	for _, s := range res.Best {
		fmt.Printf("  %s → %s\n", formatAssignment(s.Assignment, con), sr.Format(s.Value))
	}
	fmt.Printf("stats:     %d nodes, %d prunes, %d tables, %s\n",
		res.Stats.Nodes, res.Stats.Prunes, res.Stats.TablesBuilt, res.Stats.Elapsed.Round(1000))
}

func formatAssignment(a core.Assignment, con []core.Variable) string {
	vars := make([]string, 0, len(a))
	conSet := map[core.Variable]bool{}
	for _, v := range con {
		conSet[v] = true
	}
	for v := range a {
		vars = append(vars, string(v))
	}
	sort.Strings(vars)
	parts := make([]string, 0, len(vars))
	for _, v := range vars {
		// Print con variables first-class; others only if assigned.
		if len(conSet) > 0 && !conSet[core.Variable(v)] && len(a) > len(con) {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%s", v, a.Label(core.Variable(v))))
	}
	return strings.Join(parts, " ")
}
