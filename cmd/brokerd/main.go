// Command brokerd runs the QoS broker of Fig. 6 as an HTTP daemon.
// Providers publish XML QoS documents to POST /v1/providers, clients
// discover them via GET /v1/providers?query=S, negotiate SLAs via
// POST /v1/negotiations and request pipeline compositions via
// POST /v1/compositions; the pre-v1 paths remain as deprecated
// aliases. With -ops-addr a second, operator-only listener serves
// pprof, expvar, the Prometheus metrics and the trace dump.
//
// Usage:
//
//	brokerd [-addr :8700] [-ops-addr :8701] [-link-cost 5] [-link-factor 0.96] \
//	        [-capabilities http-auth,gzip,tls13] [-solver-parallel N]
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"softsoa/internal/broker"
	"softsoa/internal/policy"
)

func main() {
	addr := flag.String("addr", ":8700", "listen address")
	opsAddr := flag.String("ops-addr", "",
		"operator listener serving /debug/pprof, /debug/vars, /metrics and /debug/traces (empty disables)")
	linkCost := flag.Float64("link-cost", broker.DefaultLinkPenalty.Cost,
		"added cost per cross-region pipeline hop")
	linkFactor := flag.Float64("link-factor", broker.DefaultLinkPenalty.Factor,
		"reliability factor per cross-region pipeline hop")
	capabilities := flag.String("capabilities", "",
		"comma-separated capability vocabulary enabling MUST/MAY policies (e.g. http-auth,gzip)")
	state := flag.String("state", "",
		"registry persistence file: loaded on boot, saved on shutdown")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second,
		"per-request handling deadline (0 disables)")
	breakerThreshold := flag.Int("breaker-threshold", 3,
		"consecutive provider failures that open its circuit breaker")
	breakerOpen := flag.Duration("breaker-open", 30*time.Second,
		"how long an open breaker rejects a provider before a half-open probe")
	failover := flag.Bool("failover", false,
		"renegotiate an SLA against healthy providers when its violation rate crosses -failover-rate")
	failoverRate := flag.Float64("failover-rate", 0.5,
		"violation rate (violations/observations) that triggers failover")
	failoverMinObs := flag.Int64("failover-min-obs", 3,
		"minimum observations on an agreement before failover can trigger")
	solverParallel := flag.Int("solver-parallel", runtime.GOMAXPROCS(0),
		"worker goroutines for composition branch-and-bound (1 = sequential)")
	flag.Parse()

	opts := []broker.ServerOption{
		broker.WithRequestTimeout(*requestTimeout),
		broker.WithBreaker(broker.BreakerConfig{
			FailureThreshold: *breakerThreshold,
			OpenTimeout:      *breakerOpen,
		}),
		broker.WithSolverParallelism(*solverParallel),
	}
	if *failover {
		opts = append(opts, broker.WithFailover(broker.FailoverPolicy{
			Enabled:         true,
			ViolationRate:   *failoverRate,
			MinObservations: *failoverMinObs,
		}))
	}
	if *capabilities != "" {
		names := strings.Split(*capabilities, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		vocab, err := policy.NewVocabulary(names...)
		if err != nil {
			log.Fatalf("brokerd: %v", err)
		}
		opts = append(opts, broker.WithServerVocabulary(vocab))
	}
	srv := broker.NewServer(broker.LinkPenalty{Cost: *linkCost, Factor: *linkFactor}, opts...)
	if *state != "" {
		if err := srv.Registry().LoadFile(*state); err != nil {
			if os.IsNotExist(errors.Unwrap(err)) {
				log.Printf("state file %s not found; starting empty", *state)
			} else {
				log.Fatalf("brokerd: %v", err)
			}
		} else {
			log.Printf("restored %d registrations from %s", srv.Registry().Len(), *state)
		}
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(srv.Handler()),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var opsSrv *http.Server
	if *opsAddr != "" {
		opsSrv = &http.Server{
			Addr:              *opsAddr,
			Handler:           opsMux(srv),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("ops listener on %s (pprof, expvar, metrics, traces)", *opsAddr)
			if err := opsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("ops listener: %v", err)
			}
		}()
	}

	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if opsSrv != nil {
			if err := opsSrv.Shutdown(shutdownCtx); err != nil {
				log.Printf("ops shutdown: %v", err)
			}
		}
	}()

	log.Printf("brokerd listening on %s (link penalty: cost %+.1f, factor ×%.2f)",
		*addr, *linkCost, *linkFactor)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("brokerd: %v", err)
	}
	if *state != "" {
		if err := srv.Registry().SaveFile(*state); err != nil {
			log.Printf("save state: %v", err)
		} else {
			log.Printf("saved %d registrations to %s", srv.Registry().Len(), *state)
		}
	}
	log.Print("brokerd stopped")
}

// opsMux builds the operator-only surface: the stdlib profilers, the
// expvar dump, the broker's Prometheus metrics and its trace ring.
// It is kept off the public listener so profiling endpoints are never
// internet-reachable by accident.
func opsMux(srv *broker.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", srv.Metrics().Handler())
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := srv.Traces().WriteJSON(w); err != nil {
			log.Printf("trace dump: %v", err)
		}
	})
	return mux
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%s)", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
