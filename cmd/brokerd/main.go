// Command brokerd runs the QoS broker of Fig. 6 as an HTTP daemon.
// Providers publish XML QoS documents to POST /v1/providers, clients
// discover them via GET /v1/providers?query=S, negotiate SLAs via
// POST /v1/negotiations and request pipeline compositions via
// POST /v1/compositions; the pre-v1 paths remain as deprecated
// aliases. With -ops-addr a second, operator-only listener serves
// pprof, expvar, the Prometheus metrics and the trace dump.
//
// Every negotiation, renegotiation and composition is captured in a
// flight-recorder journal served at GET /v1/negotiations/{id}/journal;
// with -journal-dir each finished journal is also dumped as
// <id>.jsonl, replayable offline with softsoa-replay. Logs are
// structured (log/slog): human-readable text by default, JSON lines
// under -log-json, each line carrying the request's trace id.
//
// Usage:
//
//	brokerd [-addr :8700] [-ops-addr :8701] [-link-cost 5] [-link-factor 0.96] \
//	        [-capabilities http-auth,gzip,tls13] [-solver-workers N] \
//	        [-log-json] [-log-level info] [-journal-dir journals/] \
//	        [-state-dir state/] [-snapshot-every 256] \
//	        [-max-inflight 64] [-admission-queue 128] [-drain-deadline 10s] \
//	        [-slo-sweep-every 10s] [-slo-fast-window 1m] [-slo-slow-window 1h] \
//	        [-slo-burn-threshold 0.5]
//
// An always-on SLO reconciler sweeps every live SLA on
// -slo-sweep-every, publishing per-SLA compliance, blevel-drift and
// multi-window burn-rate series on /v1/metrics and a read-only JSON
// snapshot at GET /v1/debug/slo; an SLA whose fast-window violation
// rate crosses -slo-burn-threshold is flagged at risk and, when
// -failover is on, rebound to a healthy provider immediately.
//
// With -state-dir every state mutation is appended to a checksummed
// write-ahead log and periodically compacted into an atomic snapshot;
// a restarted brokerd replays both and resumes with identical SLAs,
// sessions, compliance counters and breaker states. SIGTERM drains
// gracefully: new hot-route work is refused (503), in-flight requests
// finish under -drain-deadline, and a final snapshot is flushed.
// With -max-inflight the hot routes shed overload with 429 and a
// Retry-After hint instead of queueing unboundedly.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"softsoa/internal/broker"
	"softsoa/internal/broker/store"
	"softsoa/internal/cache"
	"softsoa/internal/obs"
	"softsoa/internal/obs/journal"
	"softsoa/internal/policy"
)

func main() {
	addr := flag.String("addr", ":8700", "listen address")
	opsAddr := flag.String("ops-addr", "",
		"operator listener serving /debug/pprof, /debug/vars, /metrics and /debug/traces (empty disables)")
	linkCost := flag.Float64("link-cost", broker.DefaultLinkPenalty.Cost,
		"added cost per cross-region pipeline hop")
	linkFactor := flag.Float64("link-factor", broker.DefaultLinkPenalty.Factor,
		"reliability factor per cross-region pipeline hop")
	capabilities := flag.String("capabilities", "",
		"comma-separated capability vocabulary enabling MUST/MAY policies (e.g. http-auth,gzip)")
	state := flag.String("state", "",
		"registry persistence file: loaded on boot, saved on shutdown")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second,
		"per-request handling deadline (0 disables)")
	breakerThreshold := flag.Int("breaker-threshold", 3,
		"consecutive provider failures that open its circuit breaker")
	breakerOpen := flag.Duration("breaker-open", 30*time.Second,
		"how long an open breaker rejects a provider before a half-open probe")
	failover := flag.Bool("failover", false,
		"renegotiate an SLA against healthy providers when its violation rate crosses -failover-rate")
	failoverRate := flag.Float64("failover-rate", 0.5,
		"violation rate (violations/observations) that triggers failover")
	failoverMinObs := flag.Int64("failover-min-obs", 3,
		"minimum observations on an agreement before failover can trigger")
	solverWorkers := flag.Int("solver-workers", 0,
		"work-stealing workers for composition branch-and-bound (0 = all CPUs, 1 = sequential)")
	solverParallel := flag.Int("solver-parallel", runtime.GOMAXPROCS(0),
		"deprecated alias for -solver-workers")
	solveCache := flag.Int("solve-cache", 4096,
		"entries in the content-addressed solve cache serving repeat negotiations, renegotiations and compositions (0 disables)")
	logJSON := flag.Bool("log-json", false, "emit JSON log lines instead of text")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	journalDir := flag.String("journal-dir", "",
		"dump each finished flight-recorder journal as <id>.jsonl in this directory (empty disables)")
	journalRetention := flag.Int("journal-retention", 256,
		"how many journals GET /v1/negotiations/{id}/journal retains (FIFO eviction)")
	stateDir := flag.String("state-dir", "",
		"durable state directory (snapshot + WAL): broker state survives crashes and restarts (empty disables)")
	snapshotEvery := flag.Int("snapshot-every", 256,
		"WAL records between snapshots compacting the log (0 disables periodic snapshots)")
	maxInflight := flag.Int("max-inflight", 0,
		"concurrent requests admitted on the hot routes; excess is queued then shed with 429 (0 disables admission control)")
	admissionQueue := flag.Int("admission-queue", 0,
		"requests allowed to wait for a hot-route slot beyond -max-inflight")
	drainDeadline := flag.Duration("drain-deadline", 10*time.Second,
		"how long a SIGTERM/SIGINT drain waits for in-flight requests before exiting")
	sloSweepEvery := flag.Duration("slo-sweep-every", 10*time.Second,
		"SLO reconciliation sweep period (0 disables the SLO subsystem)")
	sloFastWindow := flag.Duration("slo-fast-window", time.Minute,
		"fast burn-rate window; crossing -slo-burn-threshold here flags an SLA at risk")
	sloSlowWindow := flag.Duration("slo-slow-window", time.Hour,
		"slow burn-rate window providing the long-term violation-rate backdrop")
	sloBurnThreshold := flag.Float64("slo-burn-threshold", 0.5,
		"fast-window violation rate above which an SLA is at risk (triggers failover when -failover is on)")
	flag.Parse()

	workers := *solverWorkers
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "solver-parallel" {
			fmt.Fprintln(os.Stderr, "brokerd: -solver-parallel is deprecated, use -solver-workers")
			workers = *solverParallel
		}
	})

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "brokerd: %v\n", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, *logJSON, level)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	// The registry is created here rather than inside the server so
	// daemon-level series (the journal sink's error counter) land on
	// the same /metrics surface.
	reg := obs.NewRegistry()
	opts := []broker.ServerOption{
		broker.WithMetricsRegistry(reg),
		broker.WithRequestTimeout(*requestTimeout),
		broker.WithBreaker(broker.BreakerConfig{
			FailureThreshold: *breakerThreshold,
			OpenTimeout:      *breakerOpen,
		}),
		broker.WithSolverWorkers(workers),
		broker.WithSolveCache(cache.New(*solveCache)),
		broker.WithLogger(logger),
		broker.WithJournalRetention(*journalRetention),
	}
	opts = append(opts, broker.WithSLO(broker.SLOConfig{
		Disabled:      *sloSweepEvery <= 0,
		SweepEvery:    *sloSweepEvery,
		FastWindow:    *sloFastWindow,
		SlowWindow:    *sloSlowWindow,
		BurnThreshold: *sloBurnThreshold,
	}))
	if *failover {
		opts = append(opts, broker.WithFailover(broker.FailoverPolicy{
			Enabled:         true,
			ViolationRate:   *failoverRate,
			MinObservations: *failoverMinObs,
		}))
	}
	if *capabilities != "" {
		names := strings.Split(*capabilities, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		vocab, err := policy.NewVocabulary(names...)
		if err != nil {
			fatal("invalid capability vocabulary", "err", err)
		}
		opts = append(opts, broker.WithServerVocabulary(vocab))
	}
	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			fatal("create journal dir", "err", err)
		}
		sinkErrors := reg.Counter("journal_sink_errors_total",
			"Journal dumps that failed to reach -journal-dir.")
		opts = append(opts, broker.WithJournalSink(journalDumper(*journalDir, logger, sinkErrors)))
	}
	var st store.Store
	if *stateDir != "" {
		var err error
		st, err = store.Open(*stateDir)
		if err != nil {
			fatal("open state dir", "err", err)
		}
		opts = append(opts,
			broker.WithStateStore(st),
			broker.WithSnapshotEvery(*snapshotEvery))
	}
	if *maxInflight > 0 {
		opts = append(opts, broker.WithAdmission(broker.AdmissionConfig{
			MaxInFlight: *maxInflight,
			MaxQueue:    *admissionQueue,
		}))
	}
	srv := broker.NewServer(broker.LinkPenalty{Cost: *linkCost, Factor: *linkFactor}, opts...)
	if st != nil {
		stats, err := srv.Recover(context.Background())
		if err != nil {
			fatal("recover state", "err", err)
		}
		logger.Info("durable state recovered", "dir", *stateDir,
			"slas", stats.SLAs, "providers", stats.Providers,
			"replayed", stats.Replayed, "truncated", stats.Truncated)
	}
	if *state != "" {
		if err := srv.Registry().LoadFile(*state); err != nil {
			if os.IsNotExist(errors.Unwrap(err)) {
				logger.Info("state file not found; starting empty", "path", *state)
			} else {
				fatal("load state", "err", err)
			}
		} else {
			logger.Info("restored registrations", "count", srv.Registry().Len(), "path", *state)
		}
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The SLO reconciler sweeps every live SLA on its own goroutine,
	// publishing compliance and burn-rate series and failing at-risk
	// agreements over; it exits with the signal context at drain time.
	if rec := srv.SLO(); rec != nil {
		go rec.Run(ctx)
		logger.Info("SLO reconciler running",
			"sweep_every", *sloSweepEvery, "fast_window", *sloFastWindow,
			"slow_window", *sloSlowWindow, "burn_threshold", *sloBurnThreshold)
	}

	var opsSrv *http.Server
	if *opsAddr != "" {
		opsSrv = &http.Server{
			Addr:              *opsAddr,
			Handler:           opsMux(srv, logger),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("ops listener up (pprof, expvar, metrics, traces)", "addr", *opsAddr)
			if err := opsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("ops listener", "err", err)
			}
		}()
	}

	go func() {
		<-ctx.Done()
		// Graceful drain: refuse new hot-route work, then wait (under
		// the deadline) for in-flight requests to finish. The final
		// snapshot and store close happen in main, after
		// ListenAndServe returns — no handler can race them.
		srv.BeginDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainDeadline)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		if opsSrv != nil {
			if err := opsSrv.Shutdown(shutdownCtx); err != nil {
				logger.Error("ops shutdown", "err", err)
			}
		}
	}()

	logger.Info("brokerd listening",
		"addr", *addr, "link_cost", *linkCost, "link_factor", *linkFactor)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("listen", "err", err)
	}
	if *state != "" {
		if err := srv.Registry().SaveFile(*state); err != nil {
			logger.Error("save state", "err", err)
		} else {
			logger.Info("saved registrations", "count", srv.Registry().Len(), "path", *state)
		}
	}
	if st != nil {
		if err := srv.Flush(); err != nil {
			logger.Error("final snapshot", "err", err)
		}
		if err := st.Close(); err != nil {
			logger.Error("close state store", "err", err)
		}
		logger.Info("durable state flushed", "dir", *stateDir)
	}
	logger.Info("brokerd stopped")
}

func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q", s)
}

// journalDumper writes each finished journal as <id>.jsonl under dir.
// Renegotiations re-finish the same journal, atomically replacing the
// file with the extended recording (write-then-rename, so a reader
// never sees a torn journal). Failed dumps are logged and counted on
// journal_sink_errors_total — a rising counter means the journal
// directory is losing recordings (full disk, bad permissions) even
// though the broker itself keeps serving.
func journalDumper(dir string, logger *slog.Logger, errCount *obs.Counter) func(*journal.Journal) {
	fail := func(id string, err error) {
		errCount.Inc()
		logger.Warn("journal dump", "journal", id, "err", err)
	}
	return func(j *journal.Journal) {
		id := j.Meta().ID
		if id == "" {
			return
		}
		path := filepath.Join(dir, id+".jsonl")
		tmp := path + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			fail(id, err)
			return
		}
		err = j.WriteJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp, path)
		}
		if err != nil {
			//lint:ignore errcheck best-effort cleanup of the temp file
			_ = os.Remove(tmp)
			fail(id, err)
			return
		}
		logger.Debug("journal dumped", "journal", id, "path", path)
	}
}

// opsMux builds the operator-only surface: the stdlib profilers, the
// expvar dump, the broker's Prometheus metrics and its trace ring.
// It is kept off the public listener so profiling endpoints are never
// internet-reachable by accident.
func opsMux(srv *broker.Server, logger *slog.Logger) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", srv.Metrics().Handler())
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := srv.Traces().WriteJSON(w); err != nil {
			logger.Error("trace dump", "err", err)
		}
	})
	return mux
}
