// Command softsoa-bench runs the repository's reproducible benchmark
// suite and writes a machine-readable JSON report: the E-series
// anchors (Fig. 1 search, solver scaling, propagation), the
// indexed-evaluation ablation behind PR 3, and the workload grid
// solved sequentially and in parallel to measure speedup.
//
// Usage:
//
//	softsoa-bench [-out BENCH_pr3.json] [-short] [-parallel N] [-cache]
//	softsoa-bench -scaling 1,2,4,8 [-out BENCH_pr9.json] [-short]
//
// With -scaling the suite is replaced by the work-stealing scaling
// table: every workload-grid instance is solved once per worker count
// with the full result (blevel, frontier values and assignments)
// asserted identical to the 1-worker reference before anything is
// timed, then timed per count with speedup, steal and split counters
// on each row.
//
// The report deliberately carries no timestamps or hostnames — only
// toolchain and shape metadata — so reruns on the same machine diff
// cleanly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
	"softsoa/internal/solver"
	"softsoa/internal/workload"
)

// Entry is one benchmark row.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Nodes and Prunes are the solver statistics of a single solve of
	// the instance (identical every run: the search is deterministic).
	Nodes  int64 `json:"nodes,omitempty"`
	Prunes int64 `json:"prunes,omitempty"`
	// Tasks, Steals and Splits are the work-stealing scheduler
	// counters of a single solve (0 for sequential rows). Unlike the
	// returned result they depend on scheduling timing, so they vary
	// run to run; the stamped values are one representative solve.
	Tasks  int64 `json:"tasks,omitempty"`
	Steals int64 `json:"steals,omitempty"`
	Splits int64 `json:"splits,omitempty"`
	// Workers is the worker count of a scaling-table row.
	Workers int `json:"workers,omitempty"`
	// Speedup is the ratio of the matching baseline entry's ns/op to
	// this entry's: the sequential solve for parallel rows, the
	// assignment-path evaluation for the indexed ablation row, the
	// cold partner for the solve-cache rows.
	Speedup float64 `json:"speedup,omitempty"`
	// HitRate is the fraction of cache lookups the timed loop served
	// from the cache (solve-cache hot rows only; the warm-start row
	// reports the fraction of solves that applied their seeds).
	HitRate float64 `json:"hit_rate,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Short      bool    `json:"short"`
	Workers    int     `json:"workers"`
	Scaling    []int   `json:"scaling,omitempty"`
	Entries    []Entry `json:"entries"`
}

func main() {
	out := flag.String("out", "BENCH_pr3.json", "report file ('-' for stdout)")
	short := flag.Bool("short", false, "run only the CI-sized workload grid")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"workers for the parallel rows (minimum 2: the sequential rows are the 1-worker reference)")
	withCache := flag.Bool("cache", false,
		"add the solve-cache group: cold vs memo-hit solves, warm-started perturbed re-solves, and negotiation/renegotiation plan replay")
	scaling := flag.String("scaling", "",
		"comma-separated worker counts (e.g. 1,2,4,8): emit only the work-stealing scaling table over the workload grid")
	flag.Parse()

	workers := *parallel
	if workers < 2 {
		workers = 2
	}
	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Short:      *short,
		Workers:    workers,
		Entries:    []Entry{},
	}

	bench := func(name string, fn func(b *testing.B)) Entry {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		e := Entry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Entries = append(rep.Entries, e)
		return e
	}
	last := func() *Entry { return &rep.Entries[len(rep.Entries)-1] }

	if *scaling != "" {
		counts, err := parseCounts(*scaling)
		if err != nil {
			log.Fatalf("softsoa-bench: -scaling: %v", err)
		}
		rep.Scaling = counts
		scalingTable(&rep, bench, last, *short, counts)
		writeReport(&rep, *out)
		return
	}

	// E-series anchors.
	fig1 := fig1Problem()
	bench("e1/fig1-bb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := solver.BranchAndBound(fig1); res.Blevel != 7 {
				b.Fatalf("blevel = %v", res.Blevel)
			}
		}
	})
	stamp(last(), solver.BranchAndBound(fig1))

	e15, err := workload.RandomWeightedSCSP(workload.SCSPParams{
		Vars: 9, DomainSize: 3, Density: 0.7, Tightness: 1, Seed: 27,
	})
	if err != nil {
		log.Fatalf("softsoa-bench: %v", err)
	}
	bench("e15/propagate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver.Propagate(e15, 0)
		}
	})

	// Indexed-evaluation ablation: fold every constraint over every
	// complete tuple through the stride-indexed Evaluator versus the
	// map-keyed Assignment path. Same arithmetic, same order; only the
	// addressing differs.
	ablation(&rep, bench, e15)

	// Workload grid: sequential reference vs parallel, identical
	// results asserted, speedup recorded on the parallel row.
	for _, params := range workload.BenchParams(*short) {
		p, err := workload.RandomWeightedSCSP(params)
		if err != nil {
			log.Fatalf("softsoa-bench: %v", err)
		}
		tag := fmt.Sprintf("workload/v%d-d%d-s%d", params.Vars, params.DomainSize, params.Seed)
		seqRes := solver.BranchAndBound(p, solver.WithParallel(1))
		parRes := solver.BranchAndBound(p, solver.WithParallel(workers))
		if seqRes.Blevel != parRes.Blevel || len(seqRes.Best) != len(parRes.Best) {
			log.Fatalf("softsoa-bench: %s: parallel result diverged (blevel %v vs %v, %d vs %d solutions)",
				tag, seqRes.Blevel, parRes.Blevel, len(seqRes.Best), len(parRes.Best))
		}
		seq := bench(tag+"/seq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				solver.BranchAndBound(p, solver.WithParallel(1))
			}
		})
		stamp(last(), seqRes)
		bench(fmt.Sprintf("%s/par%d", tag, workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				solver.BranchAndBound(p, solver.WithParallel(workers))
			}
		})
		stamp(last(), parRes)
		last().Speedup = round3(seq.NsPerOp / last().NsPerOp)
	}

	if *withCache {
		cacheBenches(&rep, bench)
	}

	writeReport(&rep, *out)
}

func writeReport(rep *Report, out string) {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("softsoa-bench: %v", err)
	}
	buf = append(buf, '\n')
	if out == "-" {
		if _, err := os.Stdout.Write(buf); err != nil {
			log.Fatalf("softsoa-bench: %v", err)
		}
		return
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		log.Fatalf("softsoa-bench: %v", err)
	}
	fmt.Printf("wrote %s (%d entries)\n", out, len(rep.Entries))
}

// parseCounts parses the -scaling worker list.
func parseCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// scalingTable times every workload-grid instance once per worker
// count. Before any timing, each parallel solve's full result —
// blevel, frontier values and assignments — is asserted identical to
// the 1-worker reference; a divergence aborts the run. Speedup on
// each row is relative to the instance's first count in the list
// (conventionally 1, the sequential reference).
func scalingTable(rep *Report, bench func(string, func(*testing.B)) Entry, last func() *Entry, short bool, counts []int) {
	for _, params := range workload.BenchParams(short) {
		p, err := workload.RandomWeightedSCSP(params)
		if err != nil {
			log.Fatalf("softsoa-bench: %v", err)
		}
		tag := fmt.Sprintf("scaling/v%d-d%d-s%d", params.Vars, params.DomainSize, params.Seed)
		ref := solver.BranchAndBound(p, solver.WithWorkers(1))
		var base float64
		for i, w := range counts {
			w := w
			res := solver.BranchAndBound(p, solver.WithWorkers(w))
			assertSameSolve(p, tag, w, ref, res)
			bench(fmt.Sprintf("%s/w%d", tag, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					solver.BranchAndBound(p, solver.WithWorkers(w))
				}
			})
			e := last()
			stamp(e, res)
			e.Steals = res.Stats.Steals
			e.Splits = res.Stats.Splits
			e.Workers = w
			if i == 0 {
				base = e.NsPerOp
			} else {
				e.Speedup = round3(base / e.NsPerOp)
			}
		}
	}
}

// assertSameSolve verifies a parallel result is bitwise identical to
// the sequential reference: blevel, frontier order, every frontier
// value and every assignment label.
func assertSameSolve(p *core.Problem[float64], tag string, workers int, want, got solver.Result[float64]) {
	sr := p.Space().Semiring()
	if !sr.Eq(want.Blevel, got.Blevel) {
		log.Fatalf("softsoa-bench: %s/w%d: blevel %s, want %s",
			tag, workers, sr.Format(got.Blevel), sr.Format(want.Blevel))
	}
	if len(want.Best) != len(got.Best) {
		log.Fatalf("softsoa-bench: %s/w%d: frontier size %d, want %d",
			tag, workers, len(got.Best), len(want.Best))
	}
	for i := range want.Best {
		if !sr.Eq(want.Best[i].Value, got.Best[i].Value) {
			log.Fatalf("softsoa-bench: %s/w%d: frontier[%d] value %s, want %s",
				tag, workers, i, sr.Format(got.Best[i].Value), sr.Format(want.Best[i].Value))
		}
		wa, ga := want.Best[i].Assignment, got.Best[i].Assignment
		if len(wa) != len(ga) {
			log.Fatalf("softsoa-bench: %s/w%d: frontier[%d] assignment size %d, want %d",
				tag, workers, i, len(ga), len(wa))
		}
		for v, dv := range wa {
			if ga[v].Label != dv.Label {
				log.Fatalf("softsoa-bench: %s/w%d: frontier[%d] %s=%s, want %s",
					tag, workers, i, v, ga[v].Label, dv.Label)
			}
		}
	}
}

// stamp copies the deterministic search statistics onto an entry.
func stamp[T any](e *Entry, res solver.Result[T]) {
	e.Nodes = res.Stats.Nodes
	e.Prunes = res.Stats.Prunes
	e.Tasks = res.Stats.Tasks
}

// ablation benches EvalAll over digit vectors against At over
// Assignments on the same instance and records the indexed row's
// speedup against the assignment baseline.
func ablation(rep *Report, bench func(string, func(*testing.B)) Entry, p *core.Problem[float64]) {
	s := p.Space()
	sr := s.Semiring()
	cs := p.Constraints()
	ev := core.NewEvaluator(s, cs)
	sizes := ev.DomainSizes()
	sweepIndexed := func() float64 {
		digits := make([]int, len(sizes))
		acc := sr.Zero()
		for {
			acc = sr.Plus(acc, ev.EvalAll(digits))
			if !next(digits, sizes) {
				return acc
			}
		}
	}
	sweepAssignment := func() float64 {
		digits := make([]int, len(sizes))
		acc := sr.Zero()
		for {
			a := ev.Assignment(digits)
			v := sr.One()
			for _, c := range cs {
				v = sr.Times(v, c.At(a))
			}
			acc = sr.Plus(acc, v)
			if !next(digits, sizes) {
				return acc
			}
		}
	}
	want := sweepAssignment()
	if got := sweepIndexed(); !sr.Eq(got, want) {
		log.Fatalf("softsoa-bench: ablation paths disagree: %v vs %v", got, want)
	}
	base := bench("ablation/eval-assignment", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweepAssignment()
		}
	})
	bench("ablation/eval-indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweepIndexed()
		}
	})
	e := &rep.Entries[len(rep.Entries)-1]
	e.Speedup = round3(base.NsPerOp / e.NsPerOp)
}

// next advances digits as a mixed-radix odometer; false on wrap.
func next(digits, sizes []int) bool {
	for i := len(digits) - 1; i >= 0; i-- {
		digits[i]++
		if digits[i] < sizes[i] {
			return true
		}
		digits[i] = 0
	}
	return false
}

func round3(x float64) float64 { return float64(int64(x*1000+0.5)) / 1000 }

// fig1Problem rebuilds the Fig. 1 weighted CSP of the paper, the same
// instance BenchmarkE1Fig1WeightedCSP solves.
func fig1Problem() *core.Problem[float64] {
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("X", core.LabelDomain("a", "b"))
	y := s.AddVariable("Y", core.LabelDomain("a", "b"))
	return core.NewProblem(s, x).Add(
		core.Unary(s, x, map[string]float64{"a": 1, "b": 9}),
		core.Binary(s, x, y, map[[2]string]float64{
			{"a", "a"}: 5, {"a", "b"}: 1, {"b", "a"}: 2, {"b", "b"}: 2,
		}),
		core.Unary(s, y, map[string]float64{"a": 5, "b": 5}),
	)
}
