package main

// The -cache group measures the content-addressed solve cache end to
// end: the propagation-fixpoint tier, the exact branch-and-bound
// memo, the warm-started perturbed re-solve, and full negotiation /
// renegotiation plan replay through the broker. Every hot row solves
// the identical input as its cold partner — equality is asserted
// before timing — and records its speedup against the cold row.
// Absolute ratios are machine-dependent: treat a committed report as
// one machine's snapshot, not a portable constant.

import (
	"context"
	"log"
	"testing"

	"softsoa/internal/broker"
	"softsoa/internal/cache"
	"softsoa/internal/core"
	"softsoa/internal/soa"
	"softsoa/internal/solver"
	"softsoa/internal/workload"
)

// cacheBenches appends the cache group's entries to the report.
func cacheBenches(rep *Report, bench func(string, func(*testing.B)) Entry) {
	last := func() *Entry { return &rep.Entries[len(rep.Entries)-1] }

	// Tier 2: the propagation fixpoint memo against a raw Propagate of
	// the same instance. The shape is chosen so the fixpoint costs
	// well over the content hash a hit pays: many variables, wide
	// domains, dense tables.
	fp := mustSCSP(workload.SCSPParams{
		Vars: 24, DomainSize: 6, Density: 0.5, Tightness: 1, Seed: 27,
	})
	_, coldC0, _ := solver.Propagate(fp, 0)
	fc := cache.New(8)
	solver.PropagateCached(fc, fp, 0) // prime: the one miss
	if _, hotC0, _ := solver.PropagateCached(fc, fp, 0); hotC0 != coldC0 {
		log.Fatalf("softsoa-bench: cached fixpoint diverged: %v vs %v", hotC0, coldC0)
	}
	cold := bench("cache/fixpoint/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver.Propagate(fp, 0)
		}
	})
	h0, m0 := tierTotals(fc)
	bench("cache/fixpoint/hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver.PropagateCached(fc, fp, 0)
		}
	})
	last().Speedup = round3(cold.NsPerOp / last().NsPerOp)
	last().HitRate = hitRate(fc, h0, m0)

	// Tier 3: the exact search memo. The hot loop re-solves the same
	// problem through a primed cache; every iteration is a memo hit
	// that deep-copies the stored result.
	sp := mustSCSP(workload.SCSPParams{
		Vars: 10, DomainSize: 3, Density: 0.6, Tightness: 0.8, Seed: 5,
	})
	coldRes := solver.BranchAndBound(sp)
	sc := cache.New(64)
	solver.BranchAndBound(sp, solver.WithSolveCache(sc)) // prime
	hotRes := solver.BranchAndBound(sp, solver.WithSolveCache(sc))
	if coldRes.Blevel != hotRes.Blevel || len(coldRes.Best) != len(hotRes.Best) {
		log.Fatalf("softsoa-bench: cached solve diverged (blevel %v vs %v)",
			hotRes.Blevel, coldRes.Blevel)
	}
	cold = bench("cache/solve/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver.BranchAndBound(sp)
		}
	})
	stamp(last(), coldRes)
	h0, m0 = tierTotals(sc)
	bench("cache/solve/hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver.BranchAndBound(sp, solver.WithSolveCache(sc))
		}
	})
	stamp(last(), hotRes)
	last().Speedup = round3(cold.NsPerOp / last().NsPerOp)
	last().HitRate = hitRate(sc, h0, m0)

	// Warm-started re-solve of a perturbed instance: the base solve's
	// frontier seeds the perturbed search's initial bound. Each hot
	// iteration runs a *fresh* cache holding only the warm slot, so
	// what is timed is the seeded search itself — never the exact
	// memo — including the per-solve hashing and seeding overhead.
	params := workload.SCSPParams{Vars: 12, DomainSize: 3, Density: 0.6, Tightness: 0.8, Seed: 11}
	base := mustSCSP(params)
	pert := mustSCSP(params)
	pert.Add(core.Unary(pert.Space(), "v0", map[string]float64{"0": 4, "1": 0, "2": 2}))
	slot := cache.ProblemKey(base, "bench-warm")
	baseRes := solver.BranchAndBound(base)
	seeds := make([]core.Assignment, 0, len(baseRes.Best))
	for _, s := range baseRes.Best {
		seeds = append(seeds, s.Assignment)
	}
	coldPert := solver.BranchAndBound(pert)
	var warmApplied, warmTotal int64
	warmSolve := func() solver.Result[float64] {
		c := cache.New(4)
		c.Put(cache.TierSearch, slot, seeds)
		r := solver.BranchAndBound(pert, solver.WithSolveCache(c), solver.WithWarmStart(slot))
		a, _ := c.WarmStats()
		warmApplied += a
		warmTotal++
		return r
	}
	warmRes := warmSolve()
	if warmRes.Blevel != coldPert.Blevel || len(warmRes.Best) != len(coldPert.Best) {
		log.Fatalf("softsoa-bench: warm re-solve diverged (blevel %v vs %v)",
			warmRes.Blevel, coldPert.Blevel)
	}
	cold = bench("cache/resolve/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver.BranchAndBound(pert)
		}
	})
	stamp(last(), coldPert)
	bench("cache/resolve/warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			warmSolve()
		}
	})
	stamp(last(), warmRes)
	last().Speedup = round3(cold.NsPerOp / last().NsPerOp)
	if warmTotal > 0 {
		last().HitRate = round3(float64(warmApplied) / float64(warmTotal))
	}

	// Negotiation through the broker: the cold negotiator has no
	// cache and runs the full pipeline (instance build, precheck
	// propagation, transition machine) per request; the hot one
	// replays the memoised plan.
	reg := benchRegistry()
	req := benchRequest()
	ctx := context.Background()
	hc := cache.New(256)
	nCold := broker.NewNegotiator(reg)
	nHot := broker.NewNegotiator(reg, broker.WithNegotiatorSolveCache(hc))
	slaCold := mustNegotiate(ctx, nCold, req)
	mustNegotiate(ctx, nHot, req) // prime: the one cold run
	slaHot := mustNegotiate(ctx, nHot, req)
	if slaCold.AgreedLevel != slaHot.AgreedLevel || slaCold.Providers[0] != slaHot.Providers[0] {
		log.Fatalf("softsoa-bench: replayed negotiation diverged (level %v vs %v)",
			slaHot.AgreedLevel, slaCold.AgreedLevel)
	}
	cold = bench("cache/negotiate/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustNegotiate(ctx, nCold, req)
		}
	})
	h0, m0 = tierTotals(hc)
	bench("cache/negotiate/hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustNegotiate(ctx, nHot, req)
		}
	})
	last().Speedup = round3(cold.NsPerOp / last().NsPerOp)
	last().HitRate = hitRate(hc, h0, m0)

	// Perturbed renegotiation, end to end: mint a session, then
	// renegotiate to a tightened requirement. Hot iterations replay
	// both the negotiation plan and the history-keyed renegotiation
	// memo (the session's history key is content-derived, so every
	// session from the same template shares the plans).
	newReq := req.Requirement
	newReq.Base = 4
	renegotiated := func(n *broker.Negotiator) *soa.SLA {
		_, sess, _, err := n.NegotiateSession(ctx, req)
		if err != nil || sess == nil {
			log.Fatalf("softsoa-bench: bench negotiation failed: %v", err)
		}
		sla, err := sess.Renegotiate(ctx, newReq, nil, nil)
		if err != nil || sla == nil {
			log.Fatalf("softsoa-bench: bench renegotiation failed: %v", err)
		}
		return sla
	}
	rCold := renegotiated(nCold)
	rHot := renegotiated(nHot)
	if rCold.AgreedLevel != rHot.AgreedLevel || rCold.Version != rHot.Version {
		log.Fatalf("softsoa-bench: replayed renegotiation diverged (level %v vs %v)",
			rHot.AgreedLevel, rCold.AgreedLevel)
	}
	cold = bench("cache/renegotiate/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			renegotiated(nCold)
		}
	})
	h0, m0 = tierTotals(hc)
	bench("cache/renegotiate/hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			renegotiated(nHot)
		}
	})
	last().Speedup = round3(cold.NsPerOp / last().NsPerOp)
	last().HitRate = hitRate(hc, h0, m0)
}

// tierTotals sums hits and misses across all three cache tiers.
func tierTotals(c *cache.Cache) (hits, misses int64) {
	for _, t := range []cache.Tier{cache.TierTables, cache.TierFixpoint, cache.TierSearch} {
		st := c.TierStats(t)
		hits += st.Hits
		misses += st.Misses
	}
	return hits, misses
}

// hitRate is the fraction of lookups since the (h0, m0) snapshot that
// hit; 0 when nothing was looked up.
func hitRate(c *cache.Cache, h0, m0 int64) float64 {
	h, m := tierTotals(c)
	h, m = h-h0, m-m0
	if h+m == 0 {
		return 0
	}
	return round3(float64(h) / float64(h+m))
}

// mustSCSP builds a workload instance or dies.
func mustSCSP(params workload.SCSPParams) *core.Problem[float64] {
	p, err := workload.RandomWeightedSCSP(params)
	if err != nil {
		log.Fatalf("softsoa-bench: %v", err)
	}
	return p
}

// mustNegotiate runs one negotiation and dies on anything but an
// agreement — the bench shapes are chosen to always agree.
func mustNegotiate(ctx context.Context, n *broker.Negotiator, req broker.Request) *soa.SLA {
	sla, _, err := n.Negotiate(ctx, req)
	if err != nil || sla == nil {
		log.Fatalf("softsoa-bench: bench negotiation failed: %v", err)
	}
	return sla
}

// benchRegistry publishes two cost providers for the negotiation rows.
func benchRegistry() *soa.Registry {
	reg := soa.NewRegistry()
	for _, d := range []*soa.Document{
		{Service: "failmgmt", Provider: "p1", Region: "eu", Attributes: []soa.Attribute{{
			Name: "fee", Metric: soa.MetricCost,
			Base: 2, PerUnit: 1, Resource: "failures", MaxUnits: 10,
		}}},
		{Service: "failmgmt", Provider: "p2", Region: "us", Attributes: []soa.Attribute{{
			Name: "fee", Metric: soa.MetricCost,
			Base: 4, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		}}},
	} {
		if err := reg.Publish(d); err != nil {
			log.Fatalf("softsoa-bench: %v", err)
		}
	}
	return reg
}

// benchRequest is the negotiation template the cache rows repeat.
func benchRequest() broker.Request {
	lower := 20.0
	return broker.Request{
		Service: "failmgmt",
		Client:  "acme",
		Metric:  soa.MetricCost,
		Requirement: soa.Attribute{
			Name: "budget", Metric: soa.MetricCost,
			Base: 3, PerUnit: 1, Resource: "failures", MaxUnits: 10,
		},
		Lower: &lower,
	}
}
