// Package softsoa is a from-scratch Go reproduction of "Soft
// Constraints for Dependable Service Oriented Architectures"
// (Bistarelli & Santini, DSN 2008).
//
// The implementation lives under internal/:
//
//   - internal/semiring — absorptive c-semirings (Weighted, Fuzzy,
//     Probabilistic, Classical, Set-based, Cartesian products) with
//     residuated division;
//   - internal/core — soft constraints, combination ⊗, division ÷,
//     projection ⇓, entailment, SCSPs and the nonmonotonic store;
//   - internal/solver — exhaustive, branch-and-bound, variable
//     elimination and local-search SCSP solvers;
//   - internal/sccp — the nmsccp language: checked transitions C1–C4,
//     transition rules R1–R10, a deterministic interleaving scheduler
//     and a surface syntax with parser;
//   - internal/soa, internal/broker — the SOA substrate (XML QoS
//     documents, UDDI-style registry with persistence, SLAs) and the
//     QoS broker of Fig. 6 (negotiation with relaxation strategies,
//     live sessions with retract-based renegotiation, compliance
//     monitoring, single- and multi-objective composition, HTTP
//     daemon). The daemon carries a dependability layer: per-provider
//     circuit breakers consulted by negotiator and composer,
//     violation-driven failover that renegotiates a degraded SLA onto
//     healthy providers, panic-recovery and timeout middleware, and
//     structured XML error bodies. The client takes a context on
//     every method and offers WithRetry (exponential backoff +
//     jitter; never retries the 409 behind ErrNoAgreement) and
//     WithClientTimeout options;
//   - internal/faults — a deterministic seeded fault injector
//     (http.RoundTripper latency/drops/5xx plus provider-level QoS
//     degradation) behind the chaos tests;
//   - internal/integrity — dependability as refinement (Fig. 8);
//   - internal/trust, internal/coalition — trust networks and
//     trustworthy coalition formation (Fig. 9–10);
//   - internal/policy — MUST/MAY capability policies over the
//     set-based semiring;
//   - internal/workload — seeded workload generators for the
//     benchmarks.
//
// Executables live under cmd/ (brokerd, scspsolve, nmsccp,
// experiments) and runnable examples under examples/. bench_test.go
// regenerates every experiment of EXPERIMENTS.md as a testing.B
// benchmark.
package softsoa
