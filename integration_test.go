package softsoa_test

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"softsoa/internal/workload"
)

// buildBinary compiles a main package into the test's temp dir.
func buildBinary(t *testing.T, pkg string) string {
	t.Helper()
	out := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", out, pkg)
	cmd.Env = os.Environ()
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, msg)
	}
	return out
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	return buf.String(), err
}

// TestScspsolveCLI solves the Fig. 1 problem file with every solver.
func TestScspsolveCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	bin := buildBinary(t, "./cmd/scspsolve")
	for _, solver := range []string{"bb", "exhaustive", "ve", "ls"} {
		out, err := run(t, bin, "-solver", solver, "testdata/fig1.scsp")
		if err != nil {
			t.Fatalf("%s: %v\n%s", solver, err, out)
		}
		if !strings.Contains(out, "blevel:    7") {
			t.Errorf("%s: expected blevel 7:\n%s", solver, out)
		}
	}
	if out, err := run(t, bin, "missing.scsp"); err == nil {
		t.Errorf("missing file should fail:\n%s", out)
	}
	if out, err := run(t, bin, "-solver", "bogus", "testdata/fig1.scsp"); err == nil {
		t.Errorf("unknown solver should fail:\n%s", out)
	}
}

// TestNmsccpCLI runs the Example 2 and fuzzy-agreement programs.
func TestNmsccpCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	bin := buildBinary(t, "./cmd/nmsccp")
	out, err := run(t, bin, "-trace", "-project", "x", "testdata/example2.sccp")
	if err != nil {
		t.Fatalf("example2: %v\n%s", err, out)
	}
	for _, want := range []string{"status: succeeded", "σ⇓∅): 2", "R7 Retract", "x=3 → 8"} {
		if !strings.Contains(out, want) {
			t.Errorf("example2 output missing %q:\n%s", want, out)
		}
	}
	out, err = run(t, bin, "testdata/fuzzy-agreement.sccp")
	if err != nil {
		t.Fatalf("fuzzy: %v\n%s", err, out)
	}
	if !strings.Contains(out, "0.5") {
		t.Errorf("fuzzy agreement should report 0.5:\n%s", out)
	}
	// A stuck program exits non-zero.
	stuck := filepath.Join(t.TempDir(), "stuck.sccp")
	src := "semiring weighted.\nvar f in 0..1.\nmain :: ask(f == 1) -> success.\n"
	if err := os.WriteFile(stuck, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = run(t, bin, stuck)
	if err == nil {
		t.Errorf("stuck program should exit non-zero:\n%s", out)
	}
	if !strings.Contains(out, "status: stuck") {
		t.Errorf("expected stuck status:\n%s", out)
	}
}

// TestExperimentsCLI regenerates two representative experiments.
func TestExperimentsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	bin := buildBinary(t, "./cmd/experiments")
	out, err := run(t, bin, "-run", "E1")
	if err != nil {
		t.Fatalf("E1: %v\n%s", err, out)
	}
	if !strings.Contains(out, "all checks passed") || strings.Contains(out, "FAIL") {
		t.Errorf("E1 should pass:\n%s", out)
	}
	if out, err := run(t, bin, "-run", "E99"); err == nil {
		t.Errorf("unknown experiment should fail:\n%s", out)
	}
}

// TestExamplesRun executes every example main and spot-checks its
// paper-conformance output.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cases := []struct {
		pkg  string
		want []string
	}{
		{"./examples/quickstart", []string{"best level of consistency: 7", "X=a Y=b at cost 7"}},
		{"./examples/negotiation", []string{"status: stuck", "status: succeeded", "final consistency: 2"}},
		{"./examples/photoediting", []string{"(paper: holds)", "(paper: fails)", "0.96"}},
		{"./examples/coalitions", []string{"objective 0.8000", "stable? false", "stable? true"}},
		{"./examples/composition", []string{"negotiated SLA", "optimal (branch & bound)"}},
		{"./examples/slalifecycle", []string{
			"provider secure", "renegotiated to v2",
			"rejected as expected", "5 ticks elapsed, status succeeded",
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(filepath.Base(tc.pkg), func(t *testing.T) {
			bin := buildBinary(t, tc.pkg)
			out, err := run(t, bin)
			if err != nil {
				t.Fatalf("%v\n%s", err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestNmsccpSeedsExploration summarises interleavings.
func TestNmsccpSeedsExploration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	bin := buildBinary(t, "./cmd/nmsccp")
	out, err := run(t, bin, "-seeds", "6", "testdata/example2.sccp")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"outcomes over 6 seeds", "succeeded", "× 6", "schedule-independent"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestBrokerdStatePersistence boots brokerd with a state file twice.
func TestBrokerdStatePersistence(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// brokerd blocks; exercise the persistence layer directly through
	// the library path the flag drives, then confirm the daemon flag
	// parses (usage output only).
	bin := buildBinary(t, "./cmd/brokerd")
	out, err := run(t, bin, "-badflag")
	if err == nil {
		t.Fatalf("bad flag should fail:\n%s", out)
	}
	if !strings.Contains(out, "-state") {
		t.Errorf("usage should mention -state:\n%s", out)
	}
}

// TestScspgenRoundTrip: a generated problem file solves to the same
// blevel as the in-memory problem it came from.
func TestScspgenRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	gen := buildBinary(t, "./cmd/scspgen")
	solve := buildBinary(t, "./cmd/scspsolve")
	for _, sr := range []string{"weighted", "fuzzy"} {
		out, err := run(t, gen, "-semiring", sr, "-vars", "5", "-seed", "7")
		if err != nil {
			t.Fatalf("%s: %v\n%s", sr, err, out)
		}
		path := filepath.Join(t.TempDir(), "gen.scsp")
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		var want float64
		switch sr {
		case "weighted":
			p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
				Vars: 5, DomainSize: 3, Density: 0.5, Tightness: 0.9, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			want = p.Blevel()
		case "fuzzy":
			p, err := workload.RandomFuzzySCSP(workload.SCSPParams{
				Vars: 5, DomainSize: 3, Density: 0.5, Tightness: 0.9, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			want = p.Blevel()
		}
		solved, err := run(t, solve, path)
		if err != nil {
			t.Fatalf("%s: %v\n%s", sr, err, solved)
		}
		wantLine := fmt.Sprintf("blevel:    %g", want)
		if !strings.Contains(solved, wantLine) {
			t.Errorf("%s: output missing %q:\n%s", sr, wantLine, solved)
		}
	}
}
